#include "config/system_config.hpp"

#include <fstream>

#include "util/strings.hpp"

namespace gts::config {

namespace {

/// INI spelling of a policy (inverse of parse_policy).
const char* policy_ini_name(sched::Policy policy) {
  switch (policy) {
    case sched::Policy::kFcfs: return "fcfs";
    case sched::Policy::kBestFit: return "bf";
    case sched::Policy::kTopoAware: return "topo-aware";
    case sched::Policy::kTopoAwareP: return "topo-aware-p";
  }
  return "topo-aware-p";
}

}  // namespace

util::Expected<sched::Policy> parse_policy(const std::string& name) {
  const std::string policy = util::to_lower(name);
  if (policy == "fcfs") return sched::Policy::kFcfs;
  if (policy == "bf" || policy == "best-fit" || policy == "bestfit") {
    return sched::Policy::kBestFit;
  }
  if (policy == "topo-aware") return sched::Policy::kTopoAware;
  if (policy == "topo-aware-p") return sched::Policy::kTopoAwareP;
  return util::Error{util::fmt("unknown policy '{}'", name)};
}

util::Expected<SystemConfig> SystemConfig::from_ini(const Ini& ini) {
  SystemConfig config;
  config.simulation = ini.get_bool("system", "simulation", true);
  config.machine_shape = ini.get_or("system", "machine_shape", "minsky");
  config.machines =
      static_cast<int>(ini.get_int("system", "machines", 1));
  if (config.machines < 1) {
    return util::Error{"sys-config: machines must be >= 1"};
  }
  if (auto shape = parse_machine_shape(config.machine_shape); !shape) {
    return shape.error();
  }
  config.workload_manifest = ini.get_or("workload", "manifest", "");
  config.noise_sigma = ini.get_double("system", "noise_sigma", 0.0);
  config.self_audit = ini.get_bool("system", "self_audit", false);

  trace::GeneratorOptions& gen = config.generator;
  gen.job_count =
      static_cast<int>(ini.get_int("workload", "jobs", gen.job_count));
  gen.arrival_rate_per_minute = ini.get_double(
      "workload", "arrival_rate_per_minute", gen.arrival_rate_per_minute);
  gen.batch_binomial_p =
      ini.get_double("workload", "batch_binomial_p", gen.batch_binomial_p);
  gen.nn_binomial_p =
      ini.get_double("workload", "nn_binomial_p", gen.nn_binomial_p);
  gen.p_one_gpu = ini.get_double("workload", "p_one_gpu", gen.p_one_gpu);
  gen.p_two_gpu = ini.get_double("workload", "p_two_gpu", gen.p_two_gpu);
  gen.iterations = ini.get_int("workload", "iterations", gen.iterations);
  gen.seed = static_cast<std::uint64_t>(
      ini.get_int("workload", "seed", static_cast<long long>(gen.seed)));
  if (gen.job_count < 1) {
    return util::Error{"sys-config: workload jobs must be >= 1"};
  }

  config.obs.trace_out = ini.get_or("obs", "trace_out", "");
  config.obs.metrics_out = ini.get_or("obs", "metrics_out", "");
  config.obs.explain_out = ini.get_or("obs", "explain_out", "");
  auto mask = obs::parse_categories(ini.get_or("obs", "categories", "all"));
  if (!mask) return mask.error().with_context("sys-config [obs]");
  config.obs.categories = *mask;

  ServiceConfig& svc = config.service;
  auto policy = parse_policy(ini.get_or("service", "policy", "topo-aware-p"));
  if (!policy) return policy.error().with_context("sys-config [service]");
  svc.policy = *policy;
  svc.max_queue = static_cast<int>(
      ini.get_int("service", "max_queue", svc.max_queue));
  if (svc.max_queue < 1) {
    return util::Error{"sys-config [service]: max_queue must be >= 1"};
  }
  svc.retry_after_ms =
      ini.get_double("service", "retry_after_ms", svc.retry_after_ms);
  svc.socket = ini.get_or("service", "socket", "");
  svc.listen = ini.get_or("service", "listen", "");
  svc.snapshot_path = ini.get_or("service", "snapshot_path", "");
  svc.snapshot_every_s =
      ini.get_double("service", "snapshot_every_s", svc.snapshot_every_s);
  svc.batch_max = static_cast<int>(
      ini.get_int("service", "batch_max", svc.batch_max));
  if (svc.batch_max < 1) {
    return util::Error{"sys-config [service]: batch_max must be >= 1"};
  }
  svc.parse_threads = static_cast<int>(
      ini.get_int("service", "parse_threads", svc.parse_threads));
  if (svc.parse_threads < 0) {
    return util::Error{"sys-config [service]: parse_threads must be >= 0"};
  }
  svc.parallel_scoring =
      ini.get_bool("service", "parallel_scoring", svc.parallel_scoring);
  svc.scoring_threads = static_cast<int>(
      ini.get_int("service", "scoring_threads", svc.scoring_threads));
  if (svc.scoring_threads < 0) {
    return util::Error{"sys-config [service]: scoring_threads must be >= 0"};
  }
  svc.prom_port =
      static_cast<int>(ini.get_int("service", "prom_port", svc.prom_port));
  if (svc.prom_port < -1 || svc.prom_port > 65535) {
    return util::Error{
        "sys-config [service]: prom_port must be in [-1, 65535]"};
  }
  svc.prom_host = ini.get_or("service", "prom_host", svc.prom_host);
  svc.shard_count = static_cast<int>(
      ini.get_int("service", "shard_count", svc.shard_count));
  if (svc.shard_count < 1) {
    return util::Error{"sys-config [service]: shard_count must be >= 1"};
  }
  svc.shard_threads = static_cast<int>(
      ini.get_int("service", "shard_threads", svc.shard_threads));
  if (svc.shard_threads < 0) {
    return util::Error{"sys-config [service]: shard_threads must be >= 0"};
  }
  return config;
}

Ini SystemConfig::to_ini() const {
  Ini ini;
  ini.set("system", "simulation", simulation ? "true" : "false");
  ini.set("system", "machine_shape", machine_shape);
  ini.set("system", "machines", std::to_string(machines));
  ini.set("system", "noise_sigma", util::format_double(noise_sigma, 3));
  ini.set("system", "self_audit", self_audit ? "true" : "false");
  if (!workload_manifest.empty()) {
    ini.set("workload", "manifest", workload_manifest);
  }
  ini.set("workload", "jobs", std::to_string(generator.job_count));
  ini.set("workload", "arrival_rate_per_minute",
          util::format_double(generator.arrival_rate_per_minute, 2));
  ini.set("workload", "batch_binomial_p",
          util::format_double(generator.batch_binomial_p, 3));
  ini.set("workload", "nn_binomial_p",
          util::format_double(generator.nn_binomial_p, 3));
  ini.set("workload", "p_one_gpu",
          util::format_double(generator.p_one_gpu, 3));
  ini.set("workload", "p_two_gpu",
          util::format_double(generator.p_two_gpu, 3));
  ini.set("workload", "iterations", std::to_string(generator.iterations));
  ini.set("workload", "seed",
          std::to_string(static_cast<long long>(generator.seed)));
  if (!obs.trace_out.empty()) ini.set("obs", "trace_out", obs.trace_out);
  if (!obs.metrics_out.empty()) ini.set("obs", "metrics_out", obs.metrics_out);
  if (!obs.explain_out.empty()) ini.set("obs", "explain_out", obs.explain_out);
  if ((obs.categories & obs::kAllCategories) != obs::kAllCategories) {
    ini.set("obs", "categories", obs::categories_to_string(obs.categories));
  }
  ini.set("service", "policy", policy_ini_name(service.policy));
  ini.set("service", "max_queue", std::to_string(service.max_queue));
  ini.set("service", "retry_after_ms",
          util::format_double(service.retry_after_ms, 1));
  if (!service.socket.empty()) ini.set("service", "socket", service.socket);
  if (!service.listen.empty()) ini.set("service", "listen", service.listen);
  if (!service.snapshot_path.empty()) {
    ini.set("service", "snapshot_path", service.snapshot_path);
  }
  if (service.snapshot_every_s > 0.0) {
    ini.set("service", "snapshot_every_s",
            util::format_double(service.snapshot_every_s, 2));
  }
  if (service.batch_max != 1) {
    ini.set("service", "batch_max", std::to_string(service.batch_max));
  }
  if (service.parse_threads != 0) {
    ini.set("service", "parse_threads",
            std::to_string(service.parse_threads));
  }
  if (service.parallel_scoring) {
    ini.set("service", "parallel_scoring", "true");
    ini.set("service", "scoring_threads",
            std::to_string(service.scoring_threads));
  }
  if (service.prom_port >= 0) {
    ini.set("service", "prom_port", std::to_string(service.prom_port));
    ini.set("service", "prom_host", service.prom_host);
  }
  if (service.shard_count != 1) {
    ini.set("service", "shard_count", std::to_string(service.shard_count));
    ini.set("service", "shard_threads",
            std::to_string(service.shard_threads));
  }
  return ini;
}

util::Expected<AlgoConfig> AlgoConfig::from_ini(const std::string& name,
                                                const Ini& ini) {
  AlgoConfig config;
  config.name = name;
  auto policy = parse_policy(ini.get_or("scheduler", "policy", "topo-aware-p"));
  if (!policy) return policy.error().with_context(util::fmt("algo-config {}", name));
  config.policy = *policy;
  config.weights.alpha_cc =
      ini.get_double("utility", "alpha_cc", config.weights.alpha_cc);
  config.weights.alpha_b =
      ini.get_double("utility", "alpha_b", config.weights.alpha_b);
  config.weights.alpha_d =
      ini.get_double("utility", "alpha_d", config.weights.alpha_d);
  const double total = config.weights.alpha_cc + config.weights.alpha_b +
                       config.weights.alpha_d;
  if (total <= 0.0) {
    return util::Error{
        util::fmt("algo-config {}: utility weights must sum > 0", name)};
  }
  return config;
}

Ini AlgoConfig::to_ini() const {
  Ini ini;
  ini.set("scheduler", "policy", policy_ini_name(policy));
  ini.set("utility", "alpha_cc", util::format_double(weights.alpha_cc, 4));
  ini.set("utility", "alpha_b", util::format_double(weights.alpha_b, 4));
  ini.set("utility", "alpha_d", util::format_double(weights.alpha_d, 4));
  return ini;
}

util::Expected<topo::builders::MachineShape> parse_machine_shape(
    const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "minsky" || lower == "power8") {
    return topo::builders::MachineShape::kPower8Minsky;
  }
  if (lower == "pcie" || lower == "power8-pcie" || lower == "k80") {
    return topo::builders::MachineShape::kPower8Pcie;
  }
  if (lower == "dgx1" || lower == "dgx-1") {
    return topo::builders::MachineShape::kDgx1;
  }
  return util::Error{util::fmt("unknown machine shape '{}'", name)};
}

util::Expected<topo::TopologyGraph> build_topology(
    const SystemConfig& config) {
  auto shape = parse_machine_shape(config.machine_shape);
  if (!shape) return shape.error();
  return topo::builders::cluster(config.machines, *shape);
}

util::Expected<LoadedConfiguration> load_configuration(
    const std::string& sys_config_path,
    const std::vector<std::string>& algo_config_paths) {
  auto sys_ini = Ini::parse_file(sys_config_path);
  if (!sys_ini) return sys_ini.error();
  auto system = SystemConfig::from_ini(*sys_ini);
  if (!system) return system.error().with_context(sys_config_path);

  LoadedConfiguration loaded;
  loaded.system = std::move(*system);
  if (algo_config_paths.empty()) {
    return util::Error{
        "at least one algorithm config must be provided (Appendix A.3)"};
  }
  for (const std::string& path : algo_config_paths) {
    auto ini = Ini::parse_file(path);
    if (!ini) return ini.error();
    // Name = file stem without the "-config.ini" suffix.
    std::string name = path;
    if (const size_t slash = name.find_last_of('/');
        slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    if (const size_t suffix = name.rfind("-config.ini");
        suffix != std::string::npos) {
      name = name.substr(0, suffix);
    }
    auto algo = AlgoConfig::from_ini(name, *ini);
    if (!algo) return algo.error().with_context(path);
    loaded.algorithms.push_back(std::move(*algo));
  }
  return loaded;
}

util::Expected<std::vector<std::string>> write_sample_configs(
    const std::string& directory) {
  std::vector<std::string> written;
  const auto write_one = [&](const std::string& name,
                             const Ini& ini) -> util::Status {
    const std::string path = directory + "/" + name;
    std::ofstream out(path, std::ios::binary);
    if (!out) return util::Error{util::fmt("cannot write {}", path)};
    out << "# generated sample (Appendix A.3 format)\n" << ini.write();
    if (!out.good()) return util::Error{util::fmt("write to {} failed", path)};
    written.push_back(path);
    return util::Status::ok();
  };

  SystemConfig system;
  system.machines = 5;
  system.generator.job_count = 100;
  // Moderate load (see DESIGN.md): saturation forces every policy into
  // identical placements and makes the sample comparison vacuous.
  system.generator.iterations = 250;
  if (auto s = write_one("sys-config.ini", system.to_ini()); !s) {
    return s.error();
  }
  for (const auto& [name, policy] :
       std::vector<std::pair<std::string, sched::Policy>>{
           {"fcfs", sched::Policy::kFcfs},
           {"bf", sched::Policy::kBestFit},
           {"topo-aware", sched::Policy::kTopoAware},
           {"topo-aware-p", sched::Policy::kTopoAwareP}}) {
    AlgoConfig algo;
    algo.name = name;
    algo.policy = policy;
    if (auto s = write_one(name + "-config.ini", algo.to_ini()); !s) {
      return s.error();
    }
  }
  return written;
}

}  // namespace gts::config
