#include "trace/tracefile.hpp"

#include <fstream>
#include <sstream>

#include "json/json.hpp"
#include "perf/profile.hpp"
#include "util/strings.hpp"

namespace gts::trace {

std::vector<TraceRecord> from_recorder(
    const cluster::Recorder& recorder,
    const std::vector<jobgraph::JobRequest>& jobs) {
  std::vector<TraceRecord> records;
  for (const jobgraph::JobRequest& job : jobs) {
    const cluster::JobRecord* seen = recorder.find(job.id);
    TraceRecord record;
    record.id = job.id;
    record.arrival = job.arrival_time;
    record.nn = job.profile.nn;
    record.batch_size = job.profile.batch_size;
    record.num_gpus = job.num_gpus;
    record.min_utility = job.min_utility;
    record.iterations = job.iterations;
    if (seen != nullptr) {
      record.start = seen->start;
      record.end = seen->end;
      record.gpus = seen->gpus;
      record.utility = seen->placement_utility;
    }
    records.push_back(std::move(record));
  }
  return records;
}

namespace {

json::Value to_json(const TraceRecord& record) {
  json::Value value;
  value.set("id", record.id);
  value.set("arrival", record.arrival);
  value.set("nn", std::string(jobgraph::to_string(record.nn)));
  value.set("batch_size", record.batch_size);
  value.set("num_gpus", record.num_gpus);
  value.set("min_utility", record.min_utility);
  value.set("iterations", record.iterations);
  value.set("start", record.start);
  value.set("end", record.end);
  value.set("utility", record.utility);
  json::Array gpus;
  for (const int gpu : record.gpus) gpus.push_back(gpu);
  value.set("gpus", std::move(gpus));
  return value;
}

util::Expected<TraceRecord> from_json(const json::Value& value) {
  if (!value.is_object()) return util::Error{"trace record is not an object"};
  TraceRecord record;
  record.id = static_cast<int>(value.at("id").as_int());
  record.arrival = value.at("arrival").as_number();
  const auto nn = jobgraph::neural_net_from_string(value.at("nn").as_string());
  if (!nn) {
    return util::Error{
        util::fmt("unknown nn '{}'", value.at("nn").as_string())};
  }
  record.nn = *nn;
  record.batch_size = static_cast<int>(value.at("batch_size").as_int(1));
  record.num_gpus = static_cast<int>(value.at("num_gpus").as_int(1));
  record.min_utility = value.at("min_utility").as_number();
  record.iterations = value.at("iterations").as_int(4000);
  record.start = value.at("start").as_number(-1.0);
  record.end = value.at("end").as_number(-1.0);
  record.utility = value.at("utility").as_number();
  for (const json::Value& gpu : value.at("gpus").as_array()) {
    record.gpus.push_back(static_cast<int>(gpu.as_int()));
  }
  return record;
}

}  // namespace

util::Status write_jsonl(const std::vector<TraceRecord>& records,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Error{util::fmt("cannot open {} for writing", path)};
  for (const TraceRecord& record : records) {
    out << json::write(to_json(record)) << '\n';
  }
  return out.good()
             ? util::Status::ok()
             : util::Status(util::Error{util::fmt("write to {} failed", path)});
}

util::Expected<std::vector<TraceRecord>> read_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Error{util::fmt("cannot open {}", path)};
  std::vector<TraceRecord> records;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (util::trim(line).empty()) continue;
    auto value = json::parse(line);
    if (!value) {
      return value.error().with_context(
          util::fmt("{}: line {}", path, line_number));
    }
    auto record = from_json(*value);
    if (!record) {
      return record.error().with_context(
          util::fmt("{}: line {}", path, line_number));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

std::vector<jobgraph::JobRequest> to_workload(
    const std::vector<TraceRecord>& records,
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology) {
  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(records.size());
  for (const TraceRecord& record : records) {
    jobs.push_back(perf::make_profiled_dl(
        record.id, record.arrival, record.nn, record.batch_size,
        record.num_gpus, record.min_utility, model, topology,
        record.iterations));
  }
  return jobs;
}

}  // namespace gts::trace
