// Workload generator (Section 5.3).
//
// The paper generates simulated workloads with:
//   * Poisson arrivals, lambda = 10 jobs/minute;
//   * batch class ~ Binomial(3, .) over {tiny, small, medium, big};
//   * NN type ~ Binomial(2, .) over {AlexNet, CaffeRef, GoogLeNet};
// GPU counts and minimum utilities follow the prototype's job mix
// (Table 1: single-GPU jobs use min utility 0.3, multi-GPU jobs 0.5).
#pragma once

#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace gts::trace {

struct GeneratorOptions {
  int job_count = 100;
  double arrival_rate_per_minute = 10.0;  // Poisson lambda
  double batch_binomial_p = 0.5;          // Binomial(3, p) over batch classes
  double nn_binomial_p = 0.5;             // Binomial(2, p) over NN types
  /// Cumulative weights over GPU counts {1, 2, 4}; the prototype mix leans
  /// towards small jobs.
  double p_one_gpu = 0.4;
  double p_two_gpu = 0.4;  // remainder: four GPUs
  long long iterations = 4000;
  double min_utility_single_gpu = 0.3;
  double min_utility_multi_gpu = 0.5;
  std::uint64_t seed = 42;
};

/// Generates a profiled workload for `topology` (profiles computed with
/// `model`, Section 4.2). Jobs are returned in arrival order with ids
/// 0..job_count-1.
std::vector<jobgraph::JobRequest> generate_workload(
    const GeneratorOptions& options, const perf::DlWorkloadModel& model,
    const topo::TopologyGraph& topology);

}  // namespace gts::trace
