#include "trace/generator.hpp"

#include <algorithm>

#include "perf/profile.hpp"
#include "sim/arrivals.hpp"

namespace gts::trace {

std::vector<jobgraph::JobRequest> generate_workload(
    const GeneratorOptions& options, const perf::DlWorkloadModel& model,
    const topo::TopologyGraph& topology) {
  util::Rng rng(options.seed);
  util::Rng arrival_rng = rng.fork(1);
  util::Rng config_rng = rng.fork(2);

  const std::vector<double> arrivals = sim::poisson_arrivals(
      options.job_count, options.arrival_rate_per_minute, arrival_rng);

  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(options.job_count));
  for (int i = 0; i < options.job_count; ++i) {
    const auto batch = static_cast<jobgraph::BatchClass>(
        config_rng.binomial(jobgraph::kBatchClassCount - 1,
                            options.batch_binomial_p));
    const auto nn = static_cast<jobgraph::NeuralNet>(config_rng.binomial(
        jobgraph::kNeuralNetCount - 1, options.nn_binomial_p));

    const double u = config_rng.uniform();
    int num_gpus = 4;
    if (u < options.p_one_gpu) {
      num_gpus = 1;
    } else if (u < options.p_one_gpu + options.p_two_gpu) {
      num_gpus = 2;
    }
    const double min_utility = num_gpus == 1
                                   ? options.min_utility_single_gpu
                                   : options.min_utility_multi_gpu;

    jobs.push_back(perf::make_profiled_dl(
        i, arrivals[static_cast<size_t>(i)], nn,
        jobgraph::representative_batch_size(batch), num_gpus, min_utility,
        model, topology, options.iterations));
  }
  return jobs;
}

}  // namespace gts::trace
