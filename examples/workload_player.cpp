// Workload player: the prototype's manifest-driven flow (Section 5.1 and
// Appendix A.3) end to end.
//
//   1. generate a workload and save it as a JSON manifest,
//   2. re-load the manifest (as the prototype's main loop would),
//   3. run it through a chosen policy on the Minsky machine,
//   4. write the observed lifecycle as a JSONL trace,
//   5. re-load the trace and replay it under a different policy —
//      the trace-driven-simulation workflow of Section 5.3.
#include <cstdio>

#include "jobgraph/manifest.hpp"
#include "perf/model.hpp"
#include "proto/runtime.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "trace/tracefile.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("jobs", "number of jobs to generate", "12");
  cli.add_option("seed", "workload seed", "7");
  cli.add_option("dir", "output directory", "/tmp");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  const topo::TopologyGraph machine = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  // 1. Generate and persist the manifest.
  trace::GeneratorOptions gen;
  gen.job_count = static_cast<int>(cli.get_int("jobs"));
  gen.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  gen.p_one_gpu = 0.5;
  gen.p_two_gpu = 0.5;  // a single machine cannot host 4-GPU jobs + load
  gen.iterations = 300;
  const auto workload = trace::generate_workload(gen, model, machine);
  const std::string manifest_path = cli.get("dir") + "/workload.json";
  if (auto status = jobgraph::save_manifest_file(workload, manifest_path);
      !status) {
    std::fprintf(stderr, "save failed: %s\n", status.error().message.c_str());
    return 1;
  }
  std::printf("wrote %zu-job manifest to %s\n", workload.size(),
              manifest_path.c_str());

  // 2-3. The prototype loads the manifest and runs it.
  proto::PrototypeRuntime runtime(machine, model);
  proto::PrototypeConfig config;
  config.policy = sched::Policy::kTopoAwareP;
  const auto run = runtime.run_manifest(config, manifest_path);
  if (!run) {
    std::fprintf(stderr, "run failed: %s\n", run.error().message.c_str());
    return 1;
  }
  std::printf("ran under %s: makespan %.1f s, %d SLO violations\n",
              run->policy_name.c_str(), run->report.recorder.makespan(),
              run->report.recorder.slo_violations());
  std::fputs(
      run->report.recorder.render_timeline(machine, 0.0, 64).c_str(),
      stdout);

  // 4. Persist the trace.
  const auto records = trace::from_recorder(run->report.recorder, workload);
  const std::string trace_path = cli.get("dir") + "/run.jsonl";
  if (auto status = trace::write_jsonl(records, trace_path); !status) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 status.error().message.c_str());
    return 1;
  }
  std::printf("wrote trace to %s\n", trace_path.c_str());

  // 5. Trace-driven replay under a different policy.
  const auto loaded = trace::read_jsonl(trace_path);
  if (!loaded) {
    std::fprintf(stderr, "trace read failed: %s\n",
                 loaded.error().message.c_str());
    return 1;
  }
  const auto replay_jobs = trace::to_workload(*loaded, model, machine);
  proto::PrototypeConfig replay_config;
  replay_config.policy = sched::Policy::kFcfs;
  const auto replay = runtime.run(replay_config, replay_jobs);
  std::printf(
      "replayed the trace under %s: makespan %.1f s (vs %.1f s), %d SLO "
      "violations (vs %d)\n",
      replay.policy_name.c_str(), replay.report.recorder.makespan(),
      run->report.recorder.makespan(),
      replay.report.recorder.slo_violations(),
      run->report.recorder.slo_violations());
  return 0;
}
