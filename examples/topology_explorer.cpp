// Topology explorer: build the canonical machines (Power8 Minsky, PCI-e
// variant, DGX-1) or a generated cluster, print their structure, distance
// matrices and routing properties, and demonstrate discovery from
// nvidia-smi / numactl style text.
#include <cstdio>
#include <string>

#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "topo/discovery.hpp"
#include "util/cli.hpp"

namespace {

using namespace gts;

void explore(const topo::TopologyGraph& graph) {
  std::fputs(graph.describe().c_str(), stdout);

  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  std::printf("\nPair routing (path class, effective bandwidth):\n");
  const int n = std::min(graph.gpu_count(), 8);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::printf("  GPU%d <-> GPU%d: %-20s %5.1f GB/s %s\n", a, b,
                  std::string(perf::to_string(model.classify_path(graph, a, b)))
                      .c_str(),
                  model.effective_bandwidth(graph, a, b, nullptr),
                  graph.gpu_path(a, b).peer_to_peer ? "[P2P]" : "");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("shape", "minsky | pcie | dgx1 | cluster", "minsky");
  cli.add_option("machines", "machine count for --shape cluster", "2");
  cli.add_flag("discover", "run the nvidia-smi/numactl discovery demo");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  using topo::builders::MachineShape;
  const std::string shape = cli.get("shape");
  topo::TopologyGraph graph;
  if (shape == "minsky") {
    graph = topo::builders::power8_minsky();
  } else if (shape == "pcie") {
    graph = topo::builders::power8_pcie();
  } else if (shape == "dgx1") {
    graph = topo::builders::dgx1();
  } else if (shape == "cluster") {
    graph = topo::builders::cluster(
        static_cast<int>(cli.get_int("machines")),
        MachineShape::kPower8Minsky);
  } else {
    std::fprintf(stderr, "unknown shape '%s'\n", shape.c_str());
    return 1;
  }
  explore(graph);

  if (cli.has("discover")) {
    std::printf("\n--- discovery demo: matrix rendered from the graph, "
                "then re-parsed ---\n");
    const std::string matrix = topo::discovery::render_matrix(graph);
    std::fputs(matrix.c_str(), stdout);
    const char* numactl =
        "available: 2 nodes (0-1)\n"
        "node 0 cpus: 0 1 2 3 4 5 6 7\n"
        "node 1 cpus: 8 9 10 11 12 13 14 15\n";
    const auto rediscovered = topo::discovery::build_machine(matrix, numactl);
    if (rediscovered) {
      std::printf("\nround-tripped topology:\n%s",
                  rediscovered->describe().c_str());
    } else {
      std::printf("\ndiscovery failed: %s\n",
                  rediscovered.error().message.c_str());
    }
  }
  return 0;
}
