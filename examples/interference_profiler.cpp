// Interference profiler: builds a job profile the way Section 4.2
// describes — "performing a combinatorial collocation of a set of known
// applications" — by running every (NN, batch) x (NN, batch) pairing on
// the simulated machine and measuring the mutual slowdown. The resulting
// table is exactly what feeds Eq. 4 in the scheduler.
#include <cstdio>
#include <string>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("nn", "NN to profile: AlexNet | CaffeRef | GoogLeNet",
                 "AlexNet");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  const auto nn = jobgraph::neural_net_from_string(cli.get("nn"));
  if (!nn) {
    std::fprintf(stderr, "unknown NN '%s'\n", cli.get("nn").c_str());
    return 1;
  }

  const topo::TopologyGraph machine = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  std::printf("Profiling %s (2-GPU data-parallel) on the Minsky machine\n\n",
              cli.get("nn").c_str());

  // Solo anchors: best (pack) and sub-optimal (spread) placements.
  metrics::Table solo({"batch", "solo pack (s/100 iter)",
                       "solo spread (s/100 iter)", "spread penalty"});
  for (int b = 0; b < jobgraph::kBatchClassCount; ++b) {
    const auto batch = static_cast<jobgraph::BatchClass>(b);
    const jobgraph::JobRequest job = perf::make_profiled_dl(
        0, 0.0, *nn, jobgraph::representative_batch_size(batch), 2, 0.5,
        model, machine, 100);
    solo.add_row(
        {std::string(jobgraph::to_string(batch)),
         util::format_double(job.profile.solo_time_pack, 2),
         util::format_double(job.profile.solo_time_spread, 2),
         util::format_double(
             job.profile.solo_time_spread / job.profile.solo_time_pack, 3)});
  }
  std::fputs(solo.render("solo placement anchors (Section 4.2)").c_str(),
             stdout);

  // Combinatorial collocation: run both jobs together on one machine and
  // measure the suffered slowdown end to end through the simulator.
  std::printf("\n");
  metrics::Table matrix({"vs co-runner ->", "tiny", "small", "medium",
                         "big"});
  for (int mine = 0; mine < jobgraph::kBatchClassCount; ++mine) {
    std::vector<std::string> row;
    row.push_back(std::string(
        jobgraph::to_string(static_cast<jobgraph::BatchClass>(mine))));
    for (int other = 0; other < jobgraph::kBatchClassCount; ++other) {
      // Job A packs on socket 0, co-runner B on socket 1, via the driver.
      std::vector<jobgraph::JobRequest> jobs;
      jobs.push_back(perf::make_profiled_dl(
          0, 0.0, *nn,
          jobgraph::representative_batch_size(
              static_cast<jobgraph::BatchClass>(mine)),
          2, 0.0, model, machine, 200));
      jobs.push_back(perf::make_profiled_dl(
          1, 0.0, jobgraph::NeuralNet::kAlexNet,
          jobgraph::representative_batch_size(
              static_cast<jobgraph::BatchClass>(other)),
          2, 0.0, model, machine, 4000));
      const auto report = exp::run_policy(sched::Policy::kTopoAware, jobs,
                                          machine, model);
      const auto* record = report.recorder.find(0);
      const double slowdown =
          record->execution_time() / record->best_solo_time - 1.0;
      row.push_back(util::format_double(slowdown, 3));
    }
    matrix.add_row(std::move(row));
  }
  std::fputs(matrix
                 .render("measured collocation slowdown (co-runner is a "
                         "2-GPU AlexNet; Fig. 6 methodology)")
                 .c_str(),
             stdout);
  return 0;
}
