// Quickstart: build a Power8 topology, describe a 2-GPU deep-learning
// job, ask the topology-aware scheduler for a placement, and inspect the
// decision. This is the minimal end-to-end tour of the public API.
#include <cstdio>

#include "cluster/state.hpp"
#include "perf/profile.hpp"
#include "proto/enforcement.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"

int main() {
  using namespace gts;

  // 1. The physical machine: an IBM Power8 "Minsky" with 4 Tesla P100s.
  const topo::TopologyGraph machine = topo::builders::power8_minsky();
  std::printf("Machine: %d GPUs across %d sockets\n", machine.gpu_count(),
              machine.sockets_of_machine(0));

  // 2. The performance model calibrated against the paper's measurements.
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  // 3. Cluster state: place a 1-GPU job to create some background load.
  cluster::ClusterState state(machine, model);
  const jobgraph::JobRequest background = perf::make_profiled_dl(
      /*id=*/0, /*arrival=*/0.0, jobgraph::NeuralNet::kGoogLeNet,
      /*batch=*/16, /*gpus=*/1, /*min_utility=*/0.3, model, machine);
  state.place(background, {0}, /*now=*/0.0);
  std::printf("Background job occupies GPU0 (socket 0)\n");

  // 4. A communication-heavy 2-GPU AlexNet job arrives.
  const jobgraph::JobRequest job = perf::make_profiled_dl(
      /*id=*/1, /*arrival=*/10.0, jobgraph::NeuralNet::kAlexNet,
      /*batch=*/1, /*gpus=*/2, /*min_utility=*/0.5, model, machine);
  std::printf("Job 1: %s, batch %d, %d GPUs, min utility %.1f\n",
              std::string(jobgraph::to_string(job.profile.nn)).c_str(),
              job.profile.batch_size, job.num_gpus, job.min_utility);

  // 5. Ask TOPO-AWARE-P for a placement.
  sched::TopoAwareScheduler scheduler({}, /*postpone=*/true);
  const auto placement = scheduler.place(job, state);
  if (!placement) {
    std::printf("Job postponed: no allocation meets its utility threshold\n");
    return 0;
  }
  std::printf("Placement: GPUs");
  for (const int gpu : placement->gpus) std::printf(" %d", gpu);
  std::printf(" (utility %.2f, %s)\n", placement->utility,
              machine.same_socket(placement->gpus[0], placement->gpus[1])
                  ? "same socket, P2P over NVLink"
                  : "cross socket");

  // 6. What the prototype would export before launching Caffe (Sec. 5.1).
  const proto::EnforcementPlan plan =
      proto::make_enforcement_plan(machine, placement->gpus);
  std::printf("Launch recipe:\n");
  for (const auto& env : plan.environment) {
    std::printf("  export %s\n", env.c_str());
  }
  if (!plan.command_prefix.empty()) {
    std::printf("  %s caffe train ...\n", plan.command_prefix.c_str());
  }

  // 7. Predicted performance on this placement.
  const perf::IterationBreakdown step = state.predict_iteration(
      job, placement->gpus);
  std::printf(
      "Predicted iteration: %.1f ms compute + %.1f ms comm, interference "
      "x%.2f => %.1f ms/iter\n",
      step.compute_s * 1e3, step.comm_s * 1e3, step.interference_factor,
      step.total_s * 1e3);
  return 0;
}
