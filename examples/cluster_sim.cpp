// Cluster simulation: generate a Section 5.3 workload and run it through
// one or all scheduling policies on a cluster of Minsky machines.
//
//   cluster_sim --machines 20 --jobs 500 --policy all --seed 7
#include <cstdio>
#include <string>

#include "exp/scenarios.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("machines", "number of Minsky machines", "5");
  cli.add_option("jobs", "number of jobs", "100");
  cli.add_option("policy", "fcfs | bf | topo | topo-p | all", "all");
  cli.add_option("seed", "workload seed", "42");
  cli.add_option("iterations", "training iterations per job", "250");
  cli.add_option("lambda", "arrivals per minute (0 = scale with machines)",
                 "0");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  const int machines = static_cast<int>(cli.get_int("machines"));
  const topo::TopologyGraph topology = topo::builders::cluster(
      machines, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  trace::GeneratorOptions gen;
  gen.job_count = static_cast<int>(cli.get_int("jobs"));
  gen.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  gen.iterations = cli.get_int("iterations");
  gen.arrival_rate_per_minute =
      cli.get_double("lambda") > 0.0
          ? cli.get_double("lambda")
          : 10.0 * static_cast<double>(machines) / 5.0;
  const auto jobs = trace::generate_workload(gen, model, topology);
  std::printf(
      "cluster: %d machines (%d GPUs) | workload: %d jobs, lambda %.1f/min, "
      "seed %llu\n\n",
      machines, topology.gpu_count(), gen.job_count,
      gen.arrival_rate_per_minute,
      static_cast<unsigned long long>(gen.seed));

  std::vector<sched::Policy> policies;
  const std::string which = cli.get("policy");
  if (which == "fcfs") policies = {sched::Policy::kFcfs};
  else if (which == "bf") policies = {sched::Policy::kBestFit};
  else if (which == "topo") policies = {sched::Policy::kTopoAware};
  else if (which == "topo-p") policies = {sched::Policy::kTopoAwareP};
  else {
    policies = {sched::Policy::kBestFit, sched::Policy::kFcfs,
                sched::Policy::kTopoAware, sched::Policy::kTopoAwareP};
  }

  metrics::Table table({"policy", "makespan(s)", "SLO violations",
                        "mean wait(s)", "QoS mean", "QoS p95",
                        "decisions", "mean decision(us)"});
  for (const sched::Policy policy : policies) {
    const auto report = exp::run_policy(policy, jobs, topology, model, {},
                                        /*record_series=*/machines <= 16);
    const auto qos = metrics::summarize(report.recorder.sorted_qos_slowdowns());
    table.add_row({std::string(sched::to_string(policy)),
                   util::format_double(report.recorder.makespan(), 1),
                   std::to_string(report.recorder.slo_violations()),
                   util::format_double(report.recorder.mean_waiting_time(), 1),
                   util::format_double(qos.mean, 3),
                   util::format_double(qos.p95, 3),
                   std::to_string(report.decision_count),
                   util::format_double(report.mean_decision_seconds() * 1e6,
                                       1)});
  }
  std::fputs(table.render("policy comparison").c_str(), stdout);
  return 0;
}
