// The paper's "main.py" equivalent (Appendix A.3): load sys-config.ini
// and one or more <algo>-config.ini files, then execute one run per
// algorithm over the configured workload.
//
//   gts_system --write-samples /tmp/etc          # emit sample configs
//   gts_system /tmp/etc/sys-config.ini /tmp/etc/topo-aware-p-config.ini ...
//              /tmp/etc/bf-config.ini
#include <cstdio>

#include "config/system_config.hpp"
#include "exp/scenarios.hpp"
#include "jobgraph/manifest.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "sched/driver.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("write-samples", "write sample configs into a directory");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (cli.has("write-samples")) {
    const auto written =
        config::write_sample_configs(cli.get("write-samples"));
    if (!written) {
      std::fprintf(stderr, "%s\n", written.error().message.c_str());
      return 1;
    }
    for (const std::string& path : *written) std::printf("wrote %s\n", path.c_str());
    return 0;
  }
  if (cli.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: %s <sys-config.ini> <algo-config.ini>... \n"
                 "       %s --write-samples <dir>\n",
                 argv[0], argv[0]);
    return 1;
  }

  const std::vector<std::string> algo_paths(cli.positional().begin() + 1,
                                            cli.positional().end());
  const auto loaded =
      config::load_configuration(cli.positional()[0], algo_paths);
  if (!loaded) {
    std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
    return 1;
  }
  // Observability: the sys-config [obs] section first, then any CLI
  // --trace-out/--metrics-out/--explain-out overrides on top.
  if (auto status = obs::configure(loaded->system.obs); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }

  const auto topology = config::build_topology(loaded->system);
  if (!topology) {
    std::fprintf(stderr, "%s\n", topology.error().message.c_str());
    return 1;
  }
  const bool pcie = util::to_lower(loaded->system.machine_shape) == "pcie";
  const perf::DlWorkloadModel model(pcie
                                        ? perf::CalibrationParams::paper_k80()
                                        : perf::CalibrationParams::paper_minsky());

  // Workload: manifest file if configured, else the Section 5.3 generator.
  std::vector<jobgraph::JobRequest> jobs;
  if (!loaded->system.workload_manifest.empty()) {
    auto manifest =
        jobgraph::load_manifest_file(loaded->system.workload_manifest);
    if (!manifest) {
      std::fprintf(stderr, "%s\n", manifest.error().message.c_str());
      return 1;
    }
    jobs = std::move(*manifest);
    for (jobgraph::JobRequest& job : jobs) {
      perf::fill_profile(job, model, *topology);
    }
  } else {
    jobs = trace::generate_workload(loaded->system.generator, model,
                                    *topology);
  }
  std::printf(
      "mode=%s machine=%s x%d | %zu jobs | %zu algorithm run(s)\n\n",
      loaded->system.simulation ? "simulation" : "prototype",
      loaded->system.machine_shape.c_str(), loaded->system.machines,
      jobs.size(), loaded->algorithms.size());

  metrics::Table table({"algorithm", "policy", "makespan(s)",
                        "SLO violations", "mean wait(s)", "QoS mean"});
  for (const config::AlgoConfig& algo : loaded->algorithms) {
    const auto scheduler = sched::make_scheduler(algo.policy, algo.weights);
    sched::DriverOptions options;
    options.utility_weights = algo.weights;
    options.noise_sigma = loaded->system.noise_sigma;
    options.self_audit = loaded->system.self_audit;
    sched::Driver driver(*topology, model, *scheduler, options);
    const auto report = driver.run(jobs);
    const auto qos = metrics::summarize(report.recorder.sorted_qos_slowdowns());
    table.add_row({algo.name, scheduler->name(),
                   util::format_double(report.recorder.makespan(), 1),
                   std::to_string(report.recorder.slo_violations()),
                   util::format_double(report.recorder.mean_waiting_time(), 1),
                   util::format_double(qos.mean, 3)});
  }
  std::fputs(table.render("per-algorithm runs (Appendix A.3 workflow)").c_str(),
             stdout);
  const auto obs_written = obs::finalize();
  if (!obs_written) {
    std::fprintf(stderr, "%s\n", obs_written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *obs_written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
