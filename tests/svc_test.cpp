// Scheduler-service tests: wire-protocol encode/decode, ServiceCore verb
// semantics (malformed requests, backpressure, cancel, drain), snapshot →
// restore state identity, prototype-vs-service placement equivalence, a
// concurrent multi-client socket session (the TSan target), and a protocol
// fuzz corpus (truncations, garbage, malformed lines at batch boundaries).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "check/audit.hpp"
#include "jobgraph/manifest.hpp"
#include "perf/model.hpp"
#include "proto/runtime.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

namespace gts::svc {
namespace {

jobgraph::JobRequest dl_job(int id, double arrival, int num_gpus,
                            long long iterations = 200) {
  return jobgraph::JobRequest::make_dl(id, arrival,
                                       jobgraph::NeuralNet::kAlexNet, 4,
                                       num_gpus, 0.4, iterations);
}

Request make_request(long long id, std::string verb,
                     json::Value params = {}) {
  Request request;
  request.id = id;
  request.verb = std::move(verb);
  request.params = std::move(params);
  return request;
}

/// Topology/model/core wired like a small gts_schedd (2 Minsky machines).
class ServiceCoreTest : public ::testing::Test {
 protected:
  ServiceCoreTest()
      : topology_(topo::builders::cluster(
            2, topo::builders::MachineShape::kPower8Minsky)),
        model_(perf::CalibrationParams::paper_minsky()) {}

  ServiceCore make_core(int max_queue = 64) {
    ServiceOptions options;
    options.config.max_queue = max_queue;
    options.config.retry_after_ms = 25.0;
    options.self_audit = true;
    return ServiceCore(topology_, model_, options);
  }

  Response submit(ServiceCore& core, const jobgraph::JobRequest& job,
                  long long request_id = 1) {
    json::Value params;
    params.set("job", jobgraph::to_manifest(job));
    return core.handle(make_request(request_id, "submit", std::move(params)));
  }

  Response advance_all(ServiceCore& core, long long request_id = 90) {
    json::Value params;
    params.set("all", true);
    return core.handle(make_request(request_id, "advance", std::move(params)));
  }

  topo::TopologyGraph topology_;
  perf::DlWorkloadModel model_;
};

// --- protocol ---------------------------------------------------------------

TEST(SvcProtocolTest, RequestEncodeParseRoundtrip) {
  json::Value params;
  params.set("id", 7);
  const Request request = make_request(42, "status", std::move(params));
  const std::string line = encode(request);
  EXPECT_EQ(line.back(), '\n');
  const auto parsed = parse_request(line);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->version, kProtocolVersion);
  EXPECT_EQ(parsed->id, 42);
  EXPECT_EQ(parsed->verb, "status");
  EXPECT_EQ(parsed->params.at("id").as_int(), 7);
}

TEST(SvcProtocolTest, ResponseEncodeParseRoundtrip) {
  json::Value result;
  result.set("now", 12.5);
  const Response ok = Response::success(3, std::move(result));
  const auto parsed_ok = parse_response(encode(ok));
  ASSERT_TRUE(parsed_ok.has_value());
  EXPECT_TRUE(parsed_ok->ok);
  EXPECT_EQ(parsed_ok->id, 3);
  EXPECT_DOUBLE_EQ(parsed_ok->result.at("now").as_number(), 12.5);

  const Response fail =
      Response::failure(4, ErrorCode::kBackpressure, "queue full", 50.0);
  const auto parsed_fail = parse_response(encode(fail));
  ASSERT_TRUE(parsed_fail.has_value());
  EXPECT_FALSE(parsed_fail->ok);
  EXPECT_EQ(parsed_fail->id, 4);
  EXPECT_EQ(parsed_fail->code, ErrorCode::kBackpressure);
  EXPECT_EQ(parsed_fail->message, "queue full");
  EXPECT_DOUBLE_EQ(parsed_fail->retry_after_ms, 50.0);
}

TEST(SvcProtocolTest, ErrorCodeNamesRoundtrip) {
  for (const ErrorCode code :
       {ErrorCode::kParse, ErrorCode::kUnsupportedVersion,
        ErrorCode::kBadRequest, ErrorCode::kUnknownVerb,
        ErrorCode::kBackpressure, ErrorCode::kDraining, ErrorCode::kNotFound,
        ErrorCode::kConflict, ErrorCode::kInternal}) {
    const auto parsed = parse_error_code(to_string(code));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("no-such-code").has_value());
}

TEST(SvcProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(parse_request("not json").has_value());
  EXPECT_FALSE(parse_request("[1,2,3]").has_value());          // not an object
  EXPECT_FALSE(parse_request(R"({"id":1,"verb":"x"})").has_value());  // no v
  EXPECT_FALSE(parse_request(R"({"v":1,"verb":"x"})").has_value());   // no id
  EXPECT_FALSE(parse_request(R"({"v":1,"id":1})").has_value());  // no verb
  EXPECT_FALSE(
      parse_request(R"({"v":1,"id":1,"verb":""})").has_value());  // empty
  EXPECT_FALSE(parse_request(R"({"v":1,"id":1,"verb":"x","params":3})")
                   .has_value());  // params not an object
  const std::string oversize =
      R"({"v":1,"id":1,"verb":")" + std::string(kMaxLineBytes, 'a') + R"("})";
  EXPECT_FALSE(parse_request(oversize).has_value());
}

// --- core verb semantics ----------------------------------------------------

TEST_F(ServiceCoreTest, MalformedLineAnsweredOnIdZero) {
  ServiceCore core = make_core();
  const Response response = core.handle_line("{broken");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, 0);
  EXPECT_EQ(response.code, ErrorCode::kParse);
}

TEST_F(ServiceCoreTest, VersionMismatchAnsweredOnRequestId) {
  ServiceCore core = make_core();
  Request request = make_request(9, "ping");
  request.version = 2;
  const Response response = core.handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, 9);
  EXPECT_EQ(response.code, ErrorCode::kUnsupportedVersion);
}

TEST_F(ServiceCoreTest, UnknownVerbAndBadParams) {
  ServiceCore core = make_core();
  const Response unknown = core.handle(make_request(1, "frobnicate"));
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.code, ErrorCode::kUnknownVerb);

  // submit requires exactly one of job / manifest.
  const Response neither = core.handle(make_request(2, "submit"));
  EXPECT_FALSE(neither.ok);
  EXPECT_EQ(neither.code, ErrorCode::kBadRequest);

  json::Value params;
  params.set("id", std::string("seven"));
  const Response bad_id =
      core.handle(make_request(3, "status", std::move(params)));
  EXPECT_FALSE(bad_id.ok);
  EXPECT_EQ(bad_id.code, ErrorCode::kBadRequest);
}

TEST_F(ServiceCoreTest, SubmitLifecycle) {
  ServiceCore core = make_core();
  const Response accepted = submit(core, dl_job(1, 0.0, 2));
  ASSERT_TRUE(accepted.ok) << accepted.message;
  EXPECT_EQ(accepted.result.at("id").as_int(), 1);
  EXPECT_EQ(accepted.result.at("status").as_string(), "accepted");

  ASSERT_TRUE(advance_all(core).ok);
  json::Value status_params;
  status_params.set("id", 1);
  const Response finished =
      core.handle(make_request(5, "status", std::move(status_params)));
  ASSERT_TRUE(finished.ok);
  EXPECT_EQ(finished.result.at("state").as_string(), "finished");
  EXPECT_EQ(finished.result.at("gpus").as_array().size(), 2u);
}

TEST_F(ServiceCoreTest, BackpressureCarriesRetryHint) {
  ServiceCore core = make_core(/*max_queue=*/2);
  ASSERT_TRUE(submit(core, dl_job(1, 10.0, 1), 1).ok);
  ASSERT_TRUE(submit(core, dl_job(2, 11.0, 1), 2).ok);
  const Response third = submit(core, dl_job(3, 12.0, 1), 3);
  EXPECT_FALSE(third.ok);
  EXPECT_EQ(third.code, ErrorCode::kBackpressure);
  EXPECT_DOUBLE_EQ(third.retry_after_ms, 25.0);

  // Admitting the queue frees capacity and the retry succeeds.
  ASSERT_TRUE(advance_all(core).ok);
  EXPECT_TRUE(submit(core, dl_job(3, 12.0, 1), 4).ok);
}

TEST_F(ServiceCoreTest, CancelConflictAndNotFound) {
  ServiceCore core = make_core();
  ASSERT_TRUE(submit(core, dl_job(1, 5.0, 1)).ok);

  json::Value cancel_params;
  cancel_params.set("id", 1);
  const Response cancelled =
      core.handle(make_request(2, "cancel", cancel_params));
  ASSERT_TRUE(cancelled.ok) << cancelled.message;

  const Response again = core.handle(make_request(3, "cancel", cancel_params));
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.code, ErrorCode::kConflict);

  json::Value missing;
  missing.set("id", 999);
  const Response not_found =
      core.handle(make_request(4, "status", std::move(missing)));
  EXPECT_FALSE(not_found.ok);
  EXPECT_EQ(not_found.code, ErrorCode::kNotFound);
}

TEST_F(ServiceCoreTest, DrainRefusesNewSubmits) {
  ServiceCore core = make_core();
  ASSERT_TRUE(submit(core, dl_job(1, 0.0, 1)).ok);
  json::Value params;
  params.set("wait", false);
  ASSERT_TRUE(core.handle(make_request(2, "drain", std::move(params))).ok);
  const Response refused = submit(core, dl_job(2, 0.0, 1), 3);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, ErrorCode::kDraining);
}

// --- snapshot / restore -----------------------------------------------------

TEST_F(ServiceCoreTest, SnapshotRestoreStateIdentity) {
  ServiceCore original = make_core();
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        submit(original, dl_job(i, 2.0 * i, 1 + (i % 3), 300), i).ok);
  }
  // Mid-flight: some running, some waiting, some arrivals still pending.
  json::Value advance_params;
  advance_params.set("to", 7.0);
  ASSERT_TRUE(
      original.handle(make_request(50, "advance", advance_params)).ok);

  // Through the verb: a snapshot request checkpoints progress, which is
  // what makes the continuation bitwise-identical.
  const Response snap = original.handle(make_request(51, "snapshot"));
  ASSERT_TRUE(snap.ok) << snap.message;
  const json::Value snapshot = snap.result.at("snapshot");
  ASSERT_TRUE(validate_snapshot_json(snapshot)) << "snapshot invalid";

  ServiceCore restored = make_core();
  const auto status = restored.restore_json(snapshot);
  ASSERT_TRUE(status) << status.error().message;

  // Restored cluster state passes the validators directly.
  ASSERT_TRUE(restored.driver().validate());

  // The restored core re-snapshots byte-identically.
  EXPECT_EQ(json::write(restored.snapshot_json(), {.indent = 2}),
            json::write(snapshot, {.indent = 2}));

  // ... and every subsequent decision matches the uninterrupted run.
  for (ServiceCore* core : {&original, &restored}) {
    ASSERT_TRUE(core->handle(make_request(60, "drain")).ok);
  }
  const std::string original_list =
      encode(original.handle(make_request(61, "list")));
  const std::string restored_list =
      encode(restored.handle(make_request(61, "list")));
  EXPECT_EQ(original_list, restored_list);
  for (int i = 1; i <= 6; ++i) {
    json::Value params;
    params.set("id", i);
    const std::string a =
        encode(original.handle(make_request(70 + i, "status", params)));
    const std::string b =
        encode(restored.handle(make_request(70 + i, "status", params)));
    EXPECT_EQ(a, b) << "job " << i << " diverged after restore";
  }
}

TEST_F(ServiceCoreTest, SnapshotValidatorRejectsGarbage) {
  EXPECT_FALSE(validate_snapshot_json(json::Value{}));
  auto doc = json::parse(R"({"schema_version":1,"kind":"wrong"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(validate_snapshot_json(*doc));
  auto missing = json::parse(
      R"({"schema_version":1,"kind":"svc_snapshot","now":1.0})");
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(validate_snapshot_json(*missing));
  auto bad_version = json::parse(
      R"({"schema_version":99,"kind":"svc_snapshot","now":0,
          "capacity_version":0,"draining":false,"next_auto_id":1,
          "running":[],"waiting":[],"pending":[],"history":[]})");
  ASSERT_TRUE(bad_version.has_value());
  EXPECT_FALSE(validate_snapshot_json(*bad_version));
}

// --- prototype equivalence --------------------------------------------------

TEST_F(ServiceCoreTest, ManifestSubmitMatchesPrototypeRuntime) {
  // One fixed workload written as a Section 5.1 manifest file.
  std::vector<jobgraph::JobRequest> jobs;
  for (int i = 1; i <= 8; ++i) {
    jobs.push_back(dl_job(i, 3.0 * i, 1 + (i % 4), 250));
  }
  json::Value manifest;
  for (const jobgraph::JobRequest& job : jobs) {
    manifest.mutable_array().push_back(jobgraph::to_manifest(job));
  }
  const std::string path =
      util::fmt("./svc_manifest_{}.json", static_cast<int>(::getpid()));
  {
    std::ofstream out(path);
    out << json::write(manifest, {.indent = 2});
  }

  // Batch prototype run (Sections 5.1/5.2) on the same policy.
  proto::PrototypeRuntime runtime(topology_, model_);
  proto::PrototypeConfig config;
  config.policy = sched::Policy::kTopoAwareP;
  const auto proto_run = runtime.run_manifest(config, path);
  ASSERT_TRUE(proto_run.has_value()) << proto_run.error().message;

  // Service run: submit the same manifest over the verb, drain.
  ServiceCore core = make_core();
  json::Value params;
  params.set("manifest", path);
  const Response submitted =
      core.handle(make_request(1, "submit", std::move(params)));
  ASSERT_TRUE(submitted.ok) << submitted.message;
  EXPECT_EQ(submitted.result.at("accepted").as_int(), 8);
  ASSERT_TRUE(core.handle(make_request(2, "drain")).ok);

  // Identical placements and timings, job by job.
  for (const jobgraph::JobRequest& job : jobs) {
    const auto record = core.driver().job_record(job.id);
    const cluster::JobRecord* expected =
        proto_run->report.recorder.find(job.id);
    ASSERT_TRUE(record.has_value());
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(record->gpus, expected->gpus) << "job " << job.id;
    EXPECT_DOUBLE_EQ(record->start, expected->start) << "job " << job.id;
    EXPECT_DOUBLE_EQ(record->end, expected->end) << "job " << job.id;
    EXPECT_DOUBLE_EQ(record->placement_utility, expected->placement_utility);
  }
  std::remove(path.c_str());
}

// --- socket server (TSan target) --------------------------------------------

TEST(SvcServerTest, ConcurrentClientsSubmitAndDrain) {
  const topo::TopologyGraph topology = topo::builders::cluster(
      2, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  ServiceOptions options;
  options.config.max_queue = 64;
  ServiceCore core(topology, model, options);

  const std::string socket_path =
      util::fmt("./svc_test_{}.sock", static_cast<int>(::getpid()));
  ServerOptions server_options;
  server_options.unix_socket = socket_path;
  Server server(core, server_options);
  ASSERT_TRUE(server.start());
  std::thread server_thread([&server] { (void)server.run(); });

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 5;
  std::atomic<int> accepted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::connect_unix(socket_path);
      ASSERT_TRUE(client.has_value()) << client.error().message;
      for (int j = 0; j < kJobsPerClient; ++j) {
        const int id = 1 + c * kJobsPerClient + j;
        json::Value params;
        params.set("job",
                   jobgraph::to_manifest(dl_job(id, 1.0 * id, 1, 150)));
        const auto response = client->call("submit", params);
        ASSERT_TRUE(response.has_value()) << response.error().message;
        if (response->ok) accepted.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(accepted.load(), kClients * kJobsPerClient);

  auto control = Client::connect_unix(socket_path);
  ASSERT_TRUE(control.has_value());
  const auto drained = control->call("drain");
  ASSERT_TRUE(drained.has_value());
  EXPECT_TRUE(drained->ok);
  const auto listing = control->call("list");
  ASSERT_TRUE(listing.has_value());
  ASSERT_TRUE(listing->ok);
  EXPECT_EQ(listing->result.at("finished").as_array().size(),
            static_cast<std::size_t>(kClients * kJobsPerClient));
  const auto shutdown = control->call("shutdown");
  ASSERT_TRUE(shutdown.has_value());
  EXPECT_TRUE(shutdown->ok);
  server_thread.join();
}

TEST(SvcServerTest, MalformedLineClosesSession) {
  const topo::TopologyGraph topology = topo::builders::cluster(
      1, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  ServiceCore core(topology, model, {});

  const std::string socket_path =
      util::fmt("./svc_bad_{}.sock", static_cast<int>(::getpid()));
  ServerOptions server_options;
  server_options.unix_socket = socket_path;
  Server server(core, server_options);
  ASSERT_TRUE(server.start());
  std::thread server_thread([&server] { (void)server.run(); });

  auto bad = Client::connect_unix(socket_path);
  ASSERT_TRUE(bad.has_value());
  const auto reply = bad->roundtrip_raw("this is not json\n");
  ASSERT_TRUE(reply.has_value()) << reply.error().message;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->id, 0);
  EXPECT_EQ(reply->code, ErrorCode::kParse);
  // The session is gone; the next round trip fails at the transport.
  EXPECT_FALSE(bad->call("ping").has_value());

  // A fresh session still works.
  auto good = Client::connect_unix(socket_path);
  ASSERT_TRUE(good.has_value());
  const auto pong = good->call("ping");
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);

  server.stop();
  server_thread.join();
}

// --- protocol fuzz corpus ---------------------------------------------------

/// Hostile input the parser must classify the same way every time: empty
/// and whitespace-only lines, non-object JSON, missing/typed-wrong
/// required fields, embedded NULs and control bytes, deep nesting, and
/// near-miss requests. None of these should ever crash or be accepted.
std::vector<std::string> fuzz_corpus() {
  std::vector<std::string> corpus = {
      std::string(),
      " ",
      "\t \t",
      "null",
      "true",
      "0",
      "-1e309",
      "\"just a string\"",
      "[]",
      "[{\"v\":1,\"id\":1,\"verb\":\"ping\"}]",
      "{}",
      "{\"v\":1}",
      "{\"id\":7}",
      "{\"verb\":\"ping\"}",
      "{\"v\":1,\"id\":1}",
      "{\"v\":1,\"verb\":\"ping\"}",
      "{\"id\":1,\"verb\":\"ping\"}",
      "{\"v\":\"one\",\"id\":1,\"verb\":\"ping\"}",
      "{\"v\":1,\"id\":\"one\",\"verb\":\"ping\"}",
      "{\"v\":1,\"id\":1,\"verb\":7}",
      "{\"v\":1,\"id\":1,\"verb\":\"\"}",
      "{\"v\":1,\"id\":1,\"verb\":\"ping\",\"params\":[]}",
      "{\"v\":1,\"id\":1,\"verb\":\"ping\"}{\"v\":1,\"id\":2,\"verb\":\"ping\"}",
      "{\"v\":1,\"id\":1,\"verb\":\"ping\" garbage",
      "{\"v\":1,\"id\":1,\"verb\":\"ping\"",
      "ping",
      "GET / HTTP/1.1",
      "\xff\xfe\x00\x01",
      std::string("{\"v\":1,\0\"id\":1}", 16),
  };
  corpus.push_back(std::string(64, '{'));
  corpus.push_back(std::string(64, '[') + std::string(64, ']'));
  return corpus;
}

// Every proper prefix of a valid request line is malformed, and must be
// rejected — at every truncation point, not just "obviously broken" ones.
TEST(SvcProtocolTest, TruncatedRequestPrefixesNeverParse) {
  json::Value params;
  params.set("job", jobgraph::to_manifest(dl_job(3, 1.5, 2)));
  const std::string line = encode(make_request(11, "submit", std::move(params)));
  const std::string body = line.substr(0, line.size() - 1);  // strip '\n'
  ASSERT_TRUE(parse_request(body).has_value());
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(parse_request(body.substr(0, cut)).has_value())
        << "prefix of length " << cut << " parsed";
  }
}

// The corpus never crashes the parser and classifies identically across
// repeated parses — rejection must be a pure function of the bytes.
TEST(SvcProtocolTest, FuzzCorpusClassifiesDeterministically) {
  for (const std::string& line : fuzz_corpus()) {
    const auto first = parse_request(line);
    const auto second = parse_request(line);
    EXPECT_FALSE(first.has_value()) << "accepted: " << line;
    ASSERT_EQ(first.has_value(), second.has_value());
    if (!first.has_value()) {
      EXPECT_EQ(first.error().message, second.error().message)
          << "unstable rejection for: " << line;
    }
  }
}

// handle_line answers every corpus line (and every truncation of a valid
// line) with a well-formed parse failure on id 0, and the core keeps
// serving afterwards — hostile input is contained, never sticky.
TEST_F(ServiceCoreTest, FuzzCorpusLinesAlwaysAnswerWellFormed) {
  ServiceCore core = make_core();
  std::vector<std::string> lines = fuzz_corpus();
  const std::string valid = encode(make_request(5, "ping"));
  for (size_t cut = 0; cut + 1 < valid.size(); ++cut) {
    lines.push_back(valid.substr(0, cut));
  }
  for (const std::string& line : lines) {
    const Response response = core.handle_line(line);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.id, 0);
    EXPECT_EQ(response.code, ErrorCode::kParse);
    const auto reparsed = parse_response(encode(response));
    ASSERT_TRUE(reparsed.has_value()) << "unencodable response for: " << line;
    EXPECT_EQ(reparsed->code, ErrorCode::kParse);
  }
  const Response pong = core.handle(make_request(6, "ping"));
  EXPECT_TRUE(pong.ok);
}

/// Raw pipelined exchange: connect, send all bytes at once, read reply
/// lines until EOF or `max_replies`. Client can't pipeline (strict
/// request/response), and fuzzing batch boundaries needs pipelining.
std::vector<std::string> raw_pipelined(const std::string& socket_path,
                                       const std::string& bytes,
                                       int max_replies) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0 ||
      ::send(fd, bytes.data(), bytes.size(), 0) !=
          static_cast<ssize_t>(bytes.size())) {
    ::close(fd);
    return {};
  }
  std::string in;
  std::vector<std::string> lines;
  char buffer[4096];
  while (static_cast<int>(lines.size()) < max_replies) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    in.append(buffer, static_cast<size_t>(n));
    size_t start = 0, newline;
    while ((newline = in.find('\n', start)) != std::string::npos) {
      lines.push_back(in.substr(start, newline - start));
      start = newline + 1;
    }
    in.erase(0, start);
  }
  ::close(fd);
  return lines;
}

// A malformed line at EVERY position of a pipelined burst — before, on
// and after each batch boundary of a batch_max=3 server — produces the
// same reply stream as the unbatched oracle: the valid replies that
// preceded it, one parse failure on id 0, then connection close with the
// rest of the pipeline dropped.
TEST(SvcServerTest, MalformedLineAtEveryBatchBoundary) {
  const topo::TopologyGraph topology = topo::builders::cluster(
      1, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  constexpr int kLines = 6;
  const auto run_once = [&](int batch_max, int malformed_at)
      -> std::vector<std::string> {
    ServiceCore core(topology, model, {});
    const std::string socket_path =
        util::fmt("./svc_fuzz_{}_{}_{}.sock", static_cast<int>(::getpid()),
                  batch_max, malformed_at);
    ServerOptions server_options;
    server_options.unix_socket = socket_path;
    server_options.batch_max = batch_max;
    server_options.parse_threads = batch_max > 1 ? 2 : 0;
    Server server(core, server_options);
    EXPECT_TRUE(server.start());
    std::thread server_thread([&server] { (void)server.run(); });
    std::string bytes;
    for (int i = 0; i < kLines; ++i) {
      if (i == malformed_at) {
        bytes += "{\"v\":1,\"id\":99,\"verb\":\"subm\n";  // truncated JSON
      } else {
        json::Value params;
        params.set("job", jobgraph::to_manifest(dl_job(i + 1, 1.0 * (i + 1),
                                                       /*num_gpus=*/1)));
        bytes += encode(make_request(i + 1, "submit", std::move(params)));
      }
    }
    const std::vector<std::string> replies =
        raw_pipelined(socket_path, bytes, kLines + 1);
    server.stop();
    server_thread.join();
    return replies;
  };

  for (int malformed_at = 0; malformed_at < kLines; ++malformed_at) {
    const std::vector<std::string> oracle = run_once(1, malformed_at);
    ASSERT_EQ(static_cast<int>(oracle.size()), malformed_at + 1)
        << "malformed_at=" << malformed_at;
    const auto failure = parse_response(oracle.back() + "\n");
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->id, 0);
    EXPECT_EQ(failure->code, ErrorCode::kParse);
    const std::vector<std::string> batched = run_once(3, malformed_at);
    EXPECT_EQ(batched, oracle) << "malformed_at=" << malformed_at;
  }
}

}  // namespace
}  // namespace gts::svc
