#include <gtest/gtest.h>

#include <cstdio>

#include "jobgraph/jobgraph.hpp"
#include "jobgraph/manifest.hpp"
#include "jobgraph/workload.hpp"

namespace gts::jobgraph {
namespace {

TEST(WorkloadTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(NeuralNet::kAlexNet), "AlexNet");
  EXPECT_EQ(to_string(BatchClass::kBig), "big");
  EXPECT_EQ(neural_net_from_string("alexnet"), NeuralNet::kAlexNet);
  EXPECT_EQ(neural_net_from_string("G"), NeuralNet::kGoogLeNet);
  EXPECT_EQ(neural_net_from_string("C"), NeuralNet::kCaffeRef);
  EXPECT_FALSE(neural_net_from_string("resnet").has_value());
  EXPECT_EQ(batch_class_from_string("tiny"), BatchClass::kTiny);
  EXPECT_FALSE(batch_class_from_string("huge").has_value());
}

TEST(WorkloadTest, BatchClassification) {
  EXPECT_EQ(classify_batch_size(1), BatchClass::kTiny);
  EXPECT_EQ(classify_batch_size(2), BatchClass::kTiny);
  EXPECT_EQ(classify_batch_size(4), BatchClass::kSmall);
  EXPECT_EQ(classify_batch_size(8), BatchClass::kSmall);
  EXPECT_EQ(classify_batch_size(16), BatchClass::kMedium);
  EXPECT_EQ(classify_batch_size(32), BatchClass::kMedium);
  EXPECT_EQ(classify_batch_size(64), BatchClass::kBig);
  EXPECT_EQ(classify_batch_size(128), BatchClass::kBig);
}

TEST(WorkloadTest, RepresentativeSizesClassifyToThemselves) {
  for (int b = 0; b < kBatchClassCount; ++b) {
    const auto batch = static_cast<BatchClass>(b);
    EXPECT_EQ(classify_batch_size(representative_batch_size(batch)), batch);
  }
}

TEST(WorkloadTest, CommWeightDecreasesWithBatch) {
  // Section 5.1: weights 4 (smallest batch) down to 1 (largest).
  EXPECT_DOUBLE_EQ(comm_weight(BatchClass::kTiny), 4.0);
  EXPECT_DOUBLE_EQ(comm_weight(BatchClass::kSmall), 3.0);
  EXPECT_DOUBLE_EQ(comm_weight(BatchClass::kMedium), 2.0);
  EXPECT_DOUBLE_EQ(comm_weight(BatchClass::kBig), 1.0);
}

TEST(JobGraphTest, AllToAllEdgeCount) {
  const JobGraph g = JobGraph::all_to_all(4, 2.0);
  EXPECT_EQ(g.task_count(), 4);
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(3, 0), 2.0);  // symmetric lookup
  EXPECT_DOUBLE_EQ(g.total_weight(), 12.0);
}

TEST(JobGraphTest, ZeroWeightMeansNoEdges) {
  const JobGraph g = JobGraph::all_to_all(4, 0.0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 0.0);
}

TEST(JobGraphTest, SingleTaskHasNoEdges) {
  const JobGraph g = JobGraph::all_to_all(1, 4.0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(JobGraphTest, RingShape) {
  const JobGraph g = JobGraph::ring(4, 1.5);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(3, 0), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 0.0);
  // Two-task ring has a single edge, not a doubled one.
  EXPECT_EQ(JobGraph::ring(2, 1.0).edge_count(), 1);
}

TEST(JobGraphTest, WeightToGroup) {
  const JobGraph g = JobGraph::all_to_all(4, 1.0);
  EXPECT_DOUBLE_EQ(g.weight_to_group(0, {1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(g.weight_to_group(0, {}), 0.0);
  EXPECT_DOUBLE_EQ(g.weight_to_group(0, {0}), 0.0);  // self excluded
}

TEST(JobRequestTest, MakeDlFillsProfile) {
  const JobRequest job =
      JobRequest::make_dl(7, 12.5, NeuralNet::kCaffeRef, 4, 2, 0.5, 1000);
  EXPECT_EQ(job.id, 7);
  EXPECT_DOUBLE_EQ(job.arrival_time, 12.5);
  EXPECT_EQ(job.num_gpus, 2);
  EXPECT_EQ(job.iterations, 1000);
  EXPECT_EQ(job.profile.nn, NeuralNet::kCaffeRef);
  EXPECT_EQ(job.profile.batch, BatchClass::kSmall);
  EXPECT_DOUBLE_EQ(job.profile.comm_weight, 3.0);
  EXPECT_EQ(job.comm_graph.task_count(), 2);
  EXPECT_DOUBLE_EQ(job.comm_graph.edge_weight(0, 1), 3.0);
}

TEST(ManifestTest, RoundTripCanonicalJob) {
  const JobRequest original =
      JobRequest::make_dl(3, 25.33, NeuralNet::kAlexNet, 4, 2, 0.5);
  const json::Value manifest = to_manifest(original);
  const auto parsed = from_manifest(manifest);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->id, 3);
  EXPECT_DOUBLE_EQ(parsed->arrival_time, 25.33);
  EXPECT_EQ(parsed->profile.nn, NeuralNet::kAlexNet);
  EXPECT_EQ(parsed->profile.batch_size, 4);
  EXPECT_EQ(parsed->num_gpus, 2);
  EXPECT_DOUBLE_EQ(parsed->min_utility, 0.5);
  EXPECT_EQ(parsed->comm_graph.edge_count(), 1);
  EXPECT_DOUBLE_EQ(parsed->comm_graph.edge_weight(0, 1), 3.0);
}

TEST(ManifestTest, ExplicitEdgesSurvive) {
  JobRequest original =
      JobRequest::make_dl(1, 0.0, NeuralNet::kAlexNet, 1, 3, 0.3);
  JobGraph custom(3);
  custom.add_edge(0, 1, 2.5);
  custom.add_edge(1, 2, 1.5);
  original.comm_graph = custom;

  const auto parsed = from_manifest(to_manifest(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->comm_graph.edge_count(), 2);
  EXPECT_DOUBLE_EQ(parsed->comm_graph.edge_weight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(parsed->comm_graph.edge_weight(1, 2), 1.5);
  EXPECT_DOUBLE_EQ(parsed->comm_graph.edge_weight(0, 2), 0.0);
}

TEST(ManifestTest, ConstraintsSurvive) {
  JobRequest original =
      JobRequest::make_dl(1, 0.0, NeuralNet::kGoogLeNet, 64, 2, 0.5);
  original.profile.single_node = false;
  original.profile.anti_collocate = true;
  const auto parsed = from_manifest(to_manifest(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->profile.single_node);
  EXPECT_TRUE(parsed->profile.anti_collocate);
}

TEST(ManifestTest, RejectsBadInput) {
  EXPECT_FALSE(from_manifest(json::Value(5)).has_value());
  json::Value bad_nn;
  bad_nn.set("nn", "resnet");
  bad_nn.set("batch_size", 1);
  bad_nn.set("num_gpus", 1);
  EXPECT_FALSE(from_manifest(bad_nn).has_value());

  json::Value bad_batch;
  bad_batch.set("nn", "AlexNet");
  bad_batch.set("batch_size", 0);
  EXPECT_FALSE(from_manifest(bad_batch).has_value());

  json::Value bad_edge;
  bad_edge.set("nn", "AlexNet");
  bad_edge.set("batch_size", 1);
  bad_edge.set("num_gpus", 2);
  json::Value graph;
  graph.set("edges", json::Array{json::Array{0, 5, 1.0}});
  bad_edge.set("comm_graph", graph);
  EXPECT_FALSE(from_manifest(bad_edge).has_value());
}

TEST(ManifestTest, FileRoundTripWithArray) {
  std::vector<JobRequest> jobs;
  jobs.push_back(JobRequest::make_dl(0, 0.5, NeuralNet::kAlexNet, 1, 1, 0.3));
  jobs.push_back(JobRequest::make_dl(1, 15.0, NeuralNet::kGoogLeNet, 4, 1, 0.3));
  const std::string path = "/tmp/gts_manifest_test.json";
  ASSERT_TRUE(save_manifest_file(jobs, path).is_ok());
  const auto loaded = load_manifest_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].profile.nn, NeuralNet::kGoogLeNet);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gts::jobgraph
