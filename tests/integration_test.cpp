// End-to-end reproduction checks: the Fig. 8 prototype scenario, the
// Fig. 9 validation (simulation matches the prototype path), the
// postponement mechanism, and a small Fig. 10-style cluster comparison.
#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "perf/profile.hpp"
#include "proto/runtime.hpp"
#include "topo/builders.hpp"

namespace gts::exp {
namespace {

using jobgraph::NeuralNet;
using sched::Policy;

class Fig8Test : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  std::vector<jobgraph::JobRequest> jobs_ = table1_jobs(model_, topo_);
  PolicyComparison comparison_ = compare_policies(jobs_, topo_, model_);
};

TEST_F(Fig8Test, AllJobsFinishUnderEveryPolicy) {
  for (const Policy policy : {Policy::kBestFit, Policy::kFcfs,
                              Policy::kTopoAware, Policy::kTopoAwareP}) {
    const auto report = run_policy(policy, jobs_, topo_, model_);
    for (const auto& record : report.recorder.records()) {
      EXPECT_TRUE(record.finished())
          << sched::to_string(policy) << " job " << record.id;
    }
  }
}

TEST_F(Fig8Test, TopoAwarePBeatsGreedyOnCumulativeTime) {
  // Paper: BF 461.7 s, FCFS 456.2 s, TOPO-AWARE 454.2 s, TOPO-AWARE-P
  // 356.9 s => speedups ~1.27-1.30x. We assert the ordering and a
  // comparable speedup band (1.15x-1.6x).
  const double bf = comparison_.entry(Policy::kBestFit).makespan;
  const double fcfs = comparison_.entry(Policy::kFcfs).makespan;
  const double topo_p = comparison_.entry(Policy::kTopoAwareP).makespan;
  EXPECT_LT(topo_p, bf);
  EXPECT_LT(topo_p, fcfs);
  const double speedup = bf / topo_p;
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 1.60);
}

TEST_F(Fig8Test, TopoAwareHasNoSloViolationsGreedyDoes) {
  EXPECT_EQ(comparison_.entry(Policy::kTopoAwareP).slo_violations, 0);
  EXPECT_EQ(comparison_.entry(Policy::kTopoAware).slo_violations, 0);
  EXPECT_GT(comparison_.entry(Policy::kBestFit).slo_violations, 0);
  EXPECT_GT(comparison_.entry(Policy::kFcfs).slo_violations, 0);
}

TEST_F(Fig8Test, OnlyTopoAwareGivesEveryMultiGpuJobP2P) {
  // Paper: "Only the TOPO-AWARE-P provides P2P for jobs ... in all the
  // other scenarios the GPU communication is routed through the
  // processor's memory" (for the late 2-GPU jobs).
  const auto greedy = run_policy(Policy::kBestFit, jobs_, topo_, model_);
  const auto topo_p = run_policy(Policy::kTopoAwareP, jobs_, topo_, model_);
  int greedy_non_p2p = 0;
  for (const auto& record : greedy.recorder.records()) {
    if (record.num_gpus > 1 && !record.p2p) ++greedy_non_p2p;
  }
  EXPECT_GT(greedy_non_p2p, 0);
  for (const auto& record : topo_p.recorder.records()) {
    if (record.num_gpus > 1) {
      EXPECT_TRUE(record.p2p) << "job " << record.id;
    }
  }
}

TEST_F(Fig8Test, WorstJobSlowdownSmallerUnderTopoAware) {
  // Fig. 8(e): jobs suffer ~50%+ slowdowns under the greedy algorithms
  // that the topology-aware policy avoids.
  const auto& bf = comparison_.entry(Policy::kBestFit).qos_slowdowns;
  const auto& tp = comparison_.entry(Policy::kTopoAwareP).qos_slowdowns;
  ASSERT_FALSE(bf.empty());
  ASSERT_FALSE(tp.empty());
  EXPECT_LT(tp.front(), bf.front());
  EXPECT_GT(bf.front(), 0.5);
}

TEST_F(Fig8Test, SingleGpuJobsAvoidEachOthersSocketsUnderTopoAware) {
  // Section 5.2.2: "TOPO-AWARE-P prevents the undesirable collocation; it
  // places Job 1 on a different socket than Job 0".
  const auto report = run_policy(Policy::kTopoAwareP, jobs_, topo_, model_);
  const auto* job0 = report.recorder.find(0);
  const auto* job1 = report.recorder.find(1);
  ASSERT_TRUE(job0 != nullptr && job1 != nullptr);
  EXPECT_NE(topo_.socket_of_gpu(job0->gpus[0]),
            topo_.socket_of_gpu(job1->gpus[0]));
}

// ------------------------------------------------- postponement dynamics --

TEST(PostponementTest, TopoAwarePWaitsForP2pPlacement) {
  // Crafted scenario: two long 1-GPU jobs and two short 1-GPU jobs fill
  // the machine; the short ones free one GPU on each socket. TOPO-AWARE
  // places the 2-GPU job across sockets immediately (violating its SLO);
  // TOPO-AWARE-P postpones until a same-socket pair frees.
  const topo::TopologyGraph topo = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  std::vector<jobgraph::JobRequest> jobs;
  const auto mk = [&](int id, double arrival, int gpus, long long iters,
                      double min_utility) {
    return perf::make_profiled_dl(id, arrival, NeuralNet::kAlexNet, 1, gpus,
                                  min_utility, model, topo, iters);
  };
  jobs.push_back(mk(0, 0.0, 1, 4000, 0.3));
  jobs.push_back(mk(1, 1.0, 1, 4000, 0.3));
  jobs.push_back(mk(2, 2.0, 1, 800, 0.3));
  jobs.push_back(mk(3, 3.0, 1, 800, 0.3));
  jobs.push_back(mk(4, 5.0, 2, 1000, 0.5));

  const auto eager = run_policy(Policy::kTopoAware, jobs, topo, model);
  const auto patient = run_policy(Policy::kTopoAwareP, jobs, topo, model);

  const auto* eager_job4 = eager.recorder.find(4);
  const auto* patient_job4 = patient.recorder.find(4);
  ASSERT_TRUE(eager_job4->finished() && patient_job4->finished());

  EXPECT_FALSE(eager_job4->p2p);
  EXPECT_EQ(eager.recorder.slo_violations(), 1);

  EXPECT_TRUE(patient_job4->p2p);
  EXPECT_EQ(patient.recorder.slo_violations(), 0);
  EXPECT_GT(patient_job4->start, eager_job4->start);  // it waited
  // ... and ran much faster once placed (P2P + no cross-socket sharing).
  EXPECT_LT(patient_job4->execution_time(),
            0.7 * eager_job4->execution_time());
}

// ------------------------------------------------------- Fig. 9 check -----

TEST(Fig9ValidationTest, PrototypeAndSimulatorAgree) {
  // The "prototype" runtime and the driver-based simulation share the
  // engine by construction; Fig. 9's validation here means the manifest->
  // prototype pipeline reproduces the direct-driver numbers exactly.
  const topo::TopologyGraph topo = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = table1_jobs(model, topo);

  const auto direct = run_policy(Policy::kTopoAwareP, jobs, topo, model);

  proto::PrototypeRuntime runtime(topo, model);
  proto::PrototypeConfig config;
  config.policy = Policy::kTopoAwareP;
  const auto prototype = runtime.run(config, jobs);

  ASSERT_EQ(direct.recorder.records().size(),
            prototype.report.recorder.records().size());
  for (size_t i = 0; i < direct.recorder.records().size(); ++i) {
    EXPECT_NEAR(direct.recorder.records()[i].end,
                prototype.report.recorder.records()[i].end, 1e-9);
    EXPECT_EQ(direct.recorder.records()[i].gpus,
              prototype.report.recorder.records()[i].gpus);
  }
}

// ------------------------------------------------- Fig. 10 (small) --------

TEST(LargeScaleTest, PolicyOrderingHoldsAtClusterScale) {
  LargeScaleOptions options;
  options.machines = 5;
  options.jobs = 100;
  const PolicyComparison comparison = run_large_scale(options);

  const auto& bf = comparison.entry(Policy::kBestFit);
  const auto& fcfs = comparison.entry(Policy::kFcfs);
  const auto& ta = comparison.entry(Policy::kTopoAware);
  const auto& tp = comparison.entry(Policy::kTopoAwareP);

  // Paper Fig. 10: TOPO-AWARE-P violates no SLOs; the greedy algorithms
  // do; TOPO-AWARE sits in between.
  EXPECT_EQ(tp.slo_violations, 0);
  EXPECT_LE(ta.slo_violations, std::min(bf.slo_violations,
                                        fcfs.slo_violations));
  EXPECT_GT(bf.slo_violations + fcfs.slo_violations, 0);

  // Mean placement-quality slowdown: topology-aware best, BF worst here
  // (bin packing maximizes interference).
  const auto mean = [](const std::vector<double>& v) {
    double total = 0.0;
    for (const double x : v) total += x;
    return v.empty() ? 0.0 : total / static_cast<double>(v.size());
  };
  EXPECT_LE(mean(tp.qos_slowdowns), mean(ta.qos_slowdowns) + 1e-9);
  EXPECT_LT(mean(tp.qos_slowdowns), mean(bf.qos_slowdowns));

  // FCFS's head-of-line blocking makes waiting-inclusive slowdown worst
  // (Fig. 10b / 11: "FCFS has the worst performance").
  EXPECT_GT(mean(fcfs.qos_wait_slowdowns), mean(tp.qos_wait_slowdowns));
  EXPECT_GT(mean(fcfs.qos_wait_slowdowns), mean(bf.qos_wait_slowdowns));

  // Worst-case job: topology-aware protects the tail.
  EXPECT_LT(tp.qos_slowdowns.front(), bf.qos_slowdowns.front());
}

TEST(LargeScaleTest, DecisionOverheadTopoAboveGreedy) {
  // Section 5.5.3: the topology-aware decision costs more than greedy.
  LargeScaleOptions options;
  options.machines = 5;
  options.jobs = 100;
  const PolicyComparison comparison = run_large_scale(options);
  const double greedy = comparison.entry(Policy::kFcfs).mean_decision_us;
  const double topo = comparison.entry(Policy::kTopoAwareP).mean_decision_us;
  EXPECT_GT(topo, greedy);
}

}  // namespace
}  // namespace gts::exp
