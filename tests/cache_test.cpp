// The memoized placement-evaluation cache in TopoAwareScheduler: caching
// must be a pure optimization — every scheduling decision on a seeded
// trace is identical with the cache on and off — and the hit-rate
// counters must stay coherent.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/recorder.hpp"
#include "perf/model.hpp"
#include "sched/driver.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace gts::sched {
namespace {

using topo::builders::MachineShape;

std::vector<jobgraph::JobRequest> seeded_trace(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    int jobs, std::uint64_t seed) {
  trace::GeneratorOptions options;
  options.job_count = jobs;
  options.seed = seed;
  return trace::generate_workload(options, model, topology);
}

DriverReport run_trace(const topo::TopologyGraph& topology,
                       const perf::DlWorkloadModel& model,
                       TopoAwareScheduler& scheduler,
                       const std::vector<jobgraph::JobRequest>& jobs) {
  DriverOptions options;
  options.record_series = false;
  Driver driver(topology, model, scheduler, options);
  return driver.run(jobs);
}

void expect_identical_records(const cluster::Recorder& cached,
                              const cluster::Recorder& uncached) {
  ASSERT_EQ(cached.records().size(), uncached.records().size());
  for (size_t i = 0; i < cached.records().size(); ++i) {
    const cluster::JobRecord& a = cached.records()[i];
    const cluster::JobRecord& b = uncached.records()[i];
    EXPECT_EQ(a.id, b.id) << "record " << i;
    EXPECT_EQ(a.gpus, b.gpus) << "record " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << "record " << i;
    EXPECT_DOUBLE_EQ(a.end, b.end) << "record " << i;
    EXPECT_DOUBLE_EQ(a.placement_utility, b.placement_utility)
        << "record " << i;
    EXPECT_EQ(a.p2p, b.p2p) << "record " << i;
  }
}

// The headline property: a seeded 500-job trace on a 5-machine cluster
// schedules identically (same GPUs, same times, same utilities, job by
// job) whether or not the cache is enabled, for both postponement modes.
TEST(PlacementCacheTest, CacheOnAndOffPlaceIdenticallyOn500JobTrace) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(5, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 500, /*seed=*/20260806);

  for (const bool postpone : {false, true}) {
    TopoAwareScheduler cached({}, postpone);
    cached.set_placement_cache_enabled(true);
    const DriverReport with_cache = run_trace(topology, model, cached, jobs);

    TopoAwareScheduler uncached({}, postpone);
    uncached.set_placement_cache_enabled(false);
    const DriverReport without_cache =
        run_trace(topology, model, uncached, jobs);

    ASSERT_EQ(with_cache.recorder.records().size(), 500u);
    expect_identical_records(with_cache.recorder, without_cache.recorder);
    EXPECT_EQ(with_cache.recorder.slo_violations(),
              without_cache.recorder.slo_violations());

    // Counter sanity: the cached run did real lookups, flushed on
    // allocations, and never hit more than it looked up. Hits require an
    // evaluation that does NOT change the cluster (a postponed placement):
    // TOPO-AWARE enacts everything it evaluates, flushing the epoch cache
    // each time, so only TOPO-AWARE-P is guaranteed repeat evaluations.
    const PlacementCacheStats& stats = cached.cache_stats();
    EXPECT_GT(stats.lookups, 0) << "postpone=" << postpone;
    if (postpone) {
      EXPECT_GT(stats.hits, 0);
    }
    EXPECT_LE(stats.hits, stats.lookups) << "postpone=" << postpone;
    EXPECT_GT(stats.invalidations, 0) << "postpone=" << postpone;
    EXPECT_GE(stats.hit_rate(), 0.0);
    EXPECT_LE(stats.hit_rate(), 1.0);
    // The disabled scheduler never counted anything.
    EXPECT_EQ(uncached.cache_stats().lookups, 0);
    EXPECT_EQ(uncached.cache_stats().hits, 0);
  }
}

// Hits actually skip DRB work: with many same-shaped jobs evaluated
// against the same free set, the cached run performs fewer bipartitions.
TEST(PlacementCacheTest, HitsSkipDrbWork) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(5, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 200, /*seed=*/7);

  TopoAwareScheduler cached({}, /*postpone=*/true);
  run_trace(topology, model, cached, jobs);
  TopoAwareScheduler uncached({}, /*postpone=*/true);
  uncached.set_placement_cache_enabled(false);
  run_trace(topology, model, uncached, jobs);

  EXPECT_GT(cached.cache_stats().hits, 0);
  EXPECT_LT(cached.drb_stats().bipartitions,
            uncached.drb_stats().bipartitions);
}

// Allocation epochs: placing or removing a job bumps the cluster's
// allocation version, and the cache must re-evaluate rather than serve a
// stale placement (which would hand out an occupied GPU).
TEST(PlacementCacheTest, AllocationInvalidatesCache) {
  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(topology, model);
  // A job small enough that the machine still has room for a second
  // attempt after it is enacted (so the cache path is reached again).
  const auto jobs = seeded_trace(model, topology, 10, /*seed=*/3);
  const auto small = std::find_if(
      jobs.begin(), jobs.end(),
      [](const jobgraph::JobRequest& job) { return job.num_gpus <= 2; });
  ASSERT_NE(small, jobs.end());

  TopoAwareScheduler scheduler({}, /*postpone=*/false);
  const auto first = scheduler.place(*small, state);
  ASSERT_TRUE(first.has_value());
  // Same request against the unchanged state: a hit with the same answer.
  const auto repeat = scheduler.place(*small, state);
  ASSERT_TRUE(repeat.has_value());
  EXPECT_EQ(repeat->gpus, first->gpus);
  EXPECT_DOUBLE_EQ(repeat->utility, first->utility);
  EXPECT_GT(scheduler.cache_stats().hits, 0);

  // Enact the placement; the next identical request must not receive the
  // now-occupied GPUs.
  state.place(*small, first->gpus, /*now=*/0.0, first->utility);
  const long long invalidations_before =
      scheduler.cache_stats().invalidations;
  jobgraph::JobRequest same_shape = *small;
  same_shape.id = small->id + 1000;
  const auto after = scheduler.place(same_shape, state);
  EXPECT_GT(scheduler.cache_stats().invalidations, invalidations_before);
  if (after.has_value()) {
    for (const int gpu : after->gpus) {
      EXPECT_TRUE(state.gpu_free(gpu)) << "GPU " << gpu << " already owned";
    }
  }
}

// Two distinct ClusterState instances never share cache entries, even
// when their allocation versions coincide.
TEST(PlacementCacheTest, DistinctStatesDoNotShareEntries) {
  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 1, /*seed=*/11);

  TopoAwareScheduler scheduler({}, /*postpone=*/false);
  cluster::ClusterState first(topology, model);
  ASSERT_TRUE(scheduler.place(jobs[0], first).has_value());
  const long long hits_before = scheduler.cache_stats().hits;

  // Fresh state, same version (0): must be a miss, not a stale hit.
  cluster::ClusterState second(topology, model);
  EXPECT_NE(first.instance_id(), second.instance_id());
  EXPECT_EQ(first.allocation_version(), second.allocation_version());
  ASSERT_TRUE(scheduler.place(jobs[0], second).has_value());
  EXPECT_EQ(scheduler.cache_stats().hits, hits_before);
}

// min_utility is part of the request, not the cache key: the same shape
// with a different threshold reuses the entry but re-derives `satisfied`.
TEST(PlacementCacheTest, SatisfiedBitRecomputedPerRequest) {
  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(topology, model);
  const auto jobs = seeded_trace(model, topology, 1, /*seed=*/5);

  TopoAwareScheduler scheduler({}, /*postpone=*/false);
  jobgraph::JobRequest lenient = jobs[0];
  lenient.min_utility = 0.0;
  const auto relaxed = scheduler.place(lenient, state);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_TRUE(relaxed->satisfied);

  jobgraph::JobRequest strict = lenient;
  strict.min_utility = relaxed->utility + 0.1;
  const long long hits_before = scheduler.cache_stats().hits;
  const auto demanding = scheduler.place(strict, state);
  EXPECT_GT(scheduler.cache_stats().hits, hits_before);
  ASSERT_TRUE(demanding.has_value());
  EXPECT_EQ(demanding->gpus, relaxed->gpus);
  EXPECT_FALSE(demanding->satisfied);
}

}  // namespace
}  // namespace gts::sched
