// Tests for the extensions beyond the paper's core evaluation:
//   * the Section 4.2 performance predictor for unknown jobs,
//   * per-edge communication volumes (model-parallel job graphs),
//   * lognormal execution noise (cloud variability),
//   * heterogeneous (mixed Minsky/DGX-1) clusters,
//   * scheduling on the DGX-1 topology.
#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "perf/predictor.hpp"
#include "perf/profile.hpp"
#include "sched/driver.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace gts {
namespace {

using jobgraph::JobRequest;
using jobgraph::NeuralNet;
using topo::builders::MachineShape;

// ------------------------------------------------------------ predictor ---

class PredictorTest : public ::testing::Test {
 protected:
  topo::TopologyGraph minsky_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  perf::ProfilePredictor predictor_ =
      perf::ProfilePredictor::from_model_sweep(model_, minsky_);
};

TEST_F(PredictorTest, SweepPopulatesObservations) {
  // 3 NNs x 3 batches x {1-GPU pack, 2-GPU pack, 2-GPU spread}.
  EXPECT_EQ(predictor_.observation_count(), 27);
}

TEST_F(PredictorTest, ExactConfigurationsRecovered) {
  const JobRequest job =
      JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 8, 2, 0.0, 1);
  const std::vector<int> pack = perf::pack_placement(minsky_, 2);
  const double truth = model_.iteration(job, pack, minsky_).total_s;
  const auto predicted =
      predictor_.predict_iteration_time(NeuralNet::kAlexNet, 8, 2, true);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, truth, truth * 0.01);
}

TEST_F(PredictorTest, InterpolatesUnseenBatchSizes) {
  // Batch 4 and 32 are NOT in the {1, 8, 64} sweep.
  for (const int batch : {2, 4, 16, 32}) {
    const JobRequest job =
        JobRequest::make_dl(0, 0.0, NeuralNet::kCaffeRef, batch, 2, 0.0, 1);
    const std::vector<int> spread = perf::spread_placement(minsky_, 2);
    const double truth = model_.iteration(job, spread, minsky_).total_s;
    const auto predicted = predictor_.predict_iteration_time(
        NeuralNet::kCaffeRef, batch, 2, false);
    ASSERT_TRUE(predicted.has_value()) << "batch " << batch;
    // Iteration time is affine in batch, so interpolation is near-exact.
    EXPECT_NEAR(*predicted, truth, truth * 0.02) << "batch " << batch;
  }
}

TEST_F(PredictorTest, ExtrapolatesBeyondSweep) {
  const JobRequest job =
      JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 128, 2, 0.0, 1);
  const std::vector<int> pack = perf::pack_placement(minsky_, 2);
  const double truth = model_.iteration(job, pack, minsky_).total_s;
  const auto predicted =
      predictor_.predict_iteration_time(NeuralNet::kAlexNet, 128, 2, true);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, truth, truth * 0.05);
}

TEST_F(PredictorTest, ValidationErrorIsSmall) {
  // "High-quality decisions will be accurate enough" (Section 4.2): the
  // coarse 3-point sweep predicts the full batch range within a few %.
  EXPECT_LT(predictor_.validation_error(model_, minsky_), 0.05);
}

TEST_F(PredictorTest, CollocationRowNearestClass) {
  const auto row = predictor_.predict_collocation(NeuralNet::kAlexNet, 2);
  ASSERT_TRUE(row.has_value());
  // Batch 2 is tiny-class: the row must match the tiny calibration row.
  EXPECT_DOUBLE_EQ((*row)[0], 0.30);
  EXPECT_DOUBLE_EQ((*row)[3], 0.24);
}

TEST_F(PredictorTest, EmptyPredictorDeclines) {
  const perf::ProfilePredictor empty;
  EXPECT_FALSE(
      empty.predict_iteration_time(NeuralNet::kAlexNet, 1, 1, true)
          .has_value());
  EXPECT_FALSE(empty.predict_collocation(NeuralNet::kAlexNet, 1).has_value());
}

TEST_F(PredictorTest, ObserveExtendsKnowledge) {
  perf::ProfilePredictor predictor;
  predictor.observe({NeuralNet::kGoogLeNet, 16, 1, true, 0.5, {}});
  const auto predicted =
      predictor.predict_iteration_time(NeuralNet::kGoogLeNet, 16, 1, true);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_DOUBLE_EQ(*predicted, 0.5);
}

// --------------------------------------------- per-edge volumes (MP) ------

TEST(ModelParallelTest, HeavierEdgesMoveMoreData) {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  JobRequest uniform =
      JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 1, 2, 0.0, 1);
  JobRequest doubled = uniform;
  jobgraph::JobGraph heavy(2);
  heavy.add_edge(0, 1, 2.0 * uniform.profile.comm_weight);
  doubled.comm_graph = heavy;

  const std::vector<int> pack = {0, 1};
  const double base = model.iteration(uniform, pack, minsky).comm_s;
  const double twice = model.iteration(doubled, pack, minsky).comm_s;
  EXPECT_NEAR(twice, 2.0 * base, 1e-9);
}

TEST(ModelParallelTest, PipelineBlocksOnItsHeaviestStage) {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  // A 4-stage pipeline with one heavy inter-stage edge; placed so the
  // heavy edge crosses sockets, the iteration blocks on it.
  JobRequest job = JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 1, 4,
                                       0.0, 1);
  jobgraph::JobGraph pipeline(4);
  pipeline.add_edge(0, 1, 4.0);
  pipeline.add_edge(1, 2, 8.0);  // the heavy stage boundary
  pipeline.add_edge(2, 3, 4.0);
  job.comm_graph = pipeline;

  // 0,1 on socket 0; 2,3 on socket 1 -> the 1-2 edge crosses the X-bus.
  const std::vector<int> placement = {0, 1, 2, 3};
  const perf::IterationBreakdown step =
      model.iteration(job, placement, minsky);
  EXPECT_EQ(step.worst_path, perf::PathClass::kCrossSocketNvlinkHost);
  // 2x volume over the 27.52 GB/s cross path dominates 1x over 40 GB/s.
  EXPECT_NEAR(step.comm_s, 2.0 * 2.0 / (32.0 * 0.86), 1e-6);
}

TEST(ModelParallelTest, TopoAwarePutsTheHeavyEdgeOnNvlink) {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(minsky, model);

  // 2-stage model-parallel job: one very heavy edge. The mapper must land
  // both tasks on the same socket.
  JobRequest job = perf::make_profiled_dl(1, 0.0, NeuralNet::kAlexNet, 1, 2,
                                          0.5, model, minsky, 100);
  jobgraph::JobGraph stages(2);
  stages.add_edge(0, 1, 8.0);
  job.comm_graph = stages;

  sched::TopoAwareScheduler scheduler({}, /*postpone=*/false);
  const auto placement = scheduler.place(job, state);
  ASSERT_TRUE(placement.has_value());
  EXPECT_TRUE(minsky.same_socket(placement->gpus[0], placement->gpus[1]));
}

// ----------------------------------------------------------- noise --------

TEST(NoiseTest, NoiseChangesCompletionsButNotPlacements) {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);

  const auto scheduler = sched::make_scheduler(sched::Policy::kTopoAwareP);
  sched::DriverOptions quiet;
  sched::Driver clean_driver(minsky, model, *scheduler, quiet);
  const auto clean = clean_driver.run(jobs);

  const auto scheduler2 = sched::make_scheduler(sched::Policy::kTopoAwareP);
  sched::DriverOptions noisy;
  noisy.noise_sigma = 0.1;
  sched::Driver noisy_driver(minsky, model, *scheduler2, noisy);
  const auto shaken = noisy_driver.run(jobs);

  bool any_end_differs = false;
  for (const auto& record : clean.recorder.records()) {
    const auto* other = shaken.recorder.find(record.id);
    ASSERT_TRUE(other != nullptr && other->finished());
    if (std::abs(other->end - record.end) > 1e-6) any_end_differs = true;
  }
  EXPECT_TRUE(any_end_differs);
}

TEST(NoiseTest, DeterministicPerSeed) {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);
  sched::DriverOptions options;
  options.noise_sigma = 0.15;
  options.noise_seed = 7;

  const auto s1 = sched::make_scheduler(sched::Policy::kTopoAware);
  const auto s2 = sched::make_scheduler(sched::Policy::kTopoAware);
  sched::Driver d1(minsky, model, *s1, options);
  sched::Driver d2(minsky, model, *s2, options);
  const auto a = d1.run(jobs);
  const auto b = d2.run(jobs);
  for (const auto& record : a.recorder.records()) {
    EXPECT_DOUBLE_EQ(record.end, b.recorder.find(record.id)->end);
  }
}

TEST(NoiseTest, OrderingRobustUnderNoise) {
  // The paper's claim that "high-quality decisions will be accurate
  // enough": the topology-aware win survives 15% execution noise.
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    sched::DriverOptions options;
    options.noise_sigma = 0.15;
    options.noise_seed = seed;

    const auto greedy_sched = sched::make_scheduler(sched::Policy::kBestFit);
    sched::Driver greedy_driver(minsky, model, *greedy_sched, options);
    const auto greedy = greedy_driver.run(jobs);

    const auto topo_sched = sched::make_scheduler(sched::Policy::kTopoAwareP);
    sched::Driver topo_driver(minsky, model, *topo_sched, options);
    const auto topo = topo_driver.run(jobs);

    EXPECT_LT(topo.recorder.makespan(), greedy.recorder.makespan())
        << "seed " << seed;
  }
}

// ----------------------------------------- heterogeneous / DGX-1 ----------

TEST(MixedClusterTest, ShapesCoexist) {
  const topo::TopologyGraph graph = topo::builders::mixed_cluster(
      {MachineShape::kPower8Minsky, MachineShape::kDgx1,
       MachineShape::kPower8Minsky});
  EXPECT_TRUE(graph.validate().is_ok());
  EXPECT_EQ(graph.machine_count(), 3);
  EXPECT_EQ(graph.gpu_count(), 4 + 8 + 4);
  EXPECT_EQ(graph.gpus_of_machine(1).size(), 8u);
  // Cross-machine routing still works between unlike machines.
  EXPECT_FALSE(graph.gpu_path(0, 6).peer_to_peer);
  EXPECT_GT(graph.gpu_distance(0, 6), 200.0);
}

TEST(MixedClusterTest, SchedulerPrefersTheMachineThatFits) {
  const topo::TopologyGraph graph = topo::builders::mixed_cluster(
      {MachineShape::kPower8Minsky, MachineShape::kDgx1});
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(graph, model);
  // A 6-GPU job only fits the DGX-1.
  const JobRequest job = perf::make_profiled_dl(
      1, 0.0, NeuralNet::kAlexNet, 4, 6, 0.0, model, graph, 100);
  sched::TopoAwareScheduler scheduler({}, /*postpone=*/false);
  const auto placement = scheduler.place(job, state);
  ASSERT_TRUE(placement.has_value());
  for (const int gpu : placement->gpus) {
    EXPECT_EQ(graph.machine_of_gpu(gpu), 1);
  }
}

TEST(Dgx1SchedulingTest, TwoGpuJobLandsOnDirectNvlinkPair) {
  const topo::TopologyGraph dgx = topo::builders::dgx1();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(dgx, model);
  const JobRequest job = perf::make_profiled_dl(
      1, 0.0, NeuralNet::kAlexNet, 1, 2, 0.5, model, dgx, 100);
  sched::TopoAwareScheduler scheduler({}, /*postpone=*/true);
  const auto placement = scheduler.place(job, state);
  ASSERT_TRUE(placement.has_value());
  EXPECT_DOUBLE_EQ(
      dgx.gpu_distance(placement->gpus[0], placement->gpus[1]), 1.0);
  EXPECT_TRUE(dgx.gpu_path(placement->gpus[0], placement->gpus[1])
                  .peer_to_peer);
}

TEST(Dgx1SchedulingTest, QuadJobStaysInOneQuad) {
  const topo::TopologyGraph dgx = topo::builders::dgx1();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(dgx, model);
  const JobRequest job = perf::make_profiled_dl(
      1, 0.0, NeuralNet::kAlexNet, 1, 4, 0.5, model, dgx, 100);
  sched::TopoAwareScheduler scheduler({}, /*postpone=*/false);
  const auto placement = scheduler.place(job, state);
  ASSERT_TRUE(placement.has_value());
  const int socket = dgx.socket_of_gpu(placement->gpus[0]);
  for (const int gpu : placement->gpus) {
    EXPECT_EQ(dgx.socket_of_gpu(gpu), socket);
  }
}

TEST(Dgx1SchedulingTest, PolicyOrderingHoldsOnDgx1Cluster) {
  // The algorithm is topology-agnostic: the Fig. 10 ordering also holds
  // on a small cluster of DGX-1 machines.
  const topo::TopologyGraph graph =
      topo::builders::cluster(3, MachineShape::kDgx1);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  trace::GeneratorOptions gen;
  gen.job_count = 60;
  gen.iterations = 250;
  gen.seed = 11;
  const auto jobs = trace::generate_workload(gen, model, graph);
  const auto comparison = exp::compare_policies(jobs, graph, model);
  EXPECT_EQ(comparison.entry(sched::Policy::kTopoAwareP).slo_violations, 0);
  EXPECT_LE(comparison.entry(sched::Policy::kTopoAwareP).slo_violations,
            comparison.entry(sched::Policy::kBestFit).slo_violations);
}

}  // namespace
}  // namespace gts
