#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "partition/drb.hpp"
#include "partition/fm.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace gts::partition {
namespace {

using topo::builders::MachineShape;

// ----------------------------------------------------------------- FM -----

FmGraph two_clusters(int per_side, double intra, double inter) {
  // Vertices [0, per_side) and [per_side, 2*per_side): heavy intra-cluster
  // edges, light cross edges. Optimal cut separates the clusters.
  FmGraph g;
  g.vertex_count = 2 * per_side;
  for (int side = 0; side < 2; ++side) {
    const int base = side * per_side;
    for (int i = 0; i < per_side; ++i) {
      for (int j = i + 1; j < per_side; ++j) {
        g.edges.push_back({base + i, base + j, intra});
      }
    }
  }
  for (int i = 0; i < per_side; ++i) {
    g.edges.push_back({i, per_side + i, inter});
  }
  return g;
}

TEST(FmTest, CutWeightComputation) {
  FmGraph g;
  g.vertex_count = 3;
  g.edges = {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 5.0}};
  EXPECT_DOUBLE_EQ(cut_weight(g, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(cut_weight(g, {0, 1, 0}), 5.0);
  EXPECT_DOUBLE_EQ(cut_weight(g, {0, 0, 1}), 8.0);
}

TEST(FmTest, RecoversPlantedBipartition) {
  const FmGraph g = two_clusters(4, 10.0, 1.0);
  // Deliberately bad initial partition: interleaved. Balanced refinement
  // (the classic FM setting) must rediscover the planted clusters.
  std::vector<int> initial(8);
  for (int i = 0; i < 8; ++i) initial[static_cast<size_t>(i)] = i % 2;
  FmOptions options;
  options.max_side_fraction = 0.5;
  const FmResult result = fm_bipartition(g, initial, options);
  EXPECT_DOUBLE_EQ(result.cut_weight, 4.0);  // only the 4 cross edges
  // All of cluster 0 on one side.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(result.side[static_cast<size_t>(i)], result.side[0]);
  }
  for (int i = 5; i < 8; ++i) {
    EXPECT_EQ(result.side[static_cast<size_t>(i)], result.side[4]);
  }
  EXPECT_NE(result.side[0], result.side[4]);
}

TEST(FmTest, NeverWorseThanInitial) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    FmGraph g;
    g.vertex_count = 12;
    for (int i = 0; i < 12; ++i) {
      for (int j = i + 1; j < 12; ++j) {
        if (rng.uniform() < 0.4) {
          g.edges.push_back({i, j, rng.uniform(0.1, 5.0)});
        }
      }
    }
    std::vector<int> initial(12);
    for (auto& s : initial) s = static_cast<int>(rng.uniform_int(2));
    if (std::count(initial.begin(), initial.end(), 0) == 0) initial[0] = 0;
    if (std::count(initial.begin(), initial.end(), 1) == 0) initial[0] = 1;
    const double before = cut_weight(g, initial);
    const FmResult result = fm_bipartition(g, initial);
    EXPECT_LE(result.cut_weight, before + 1e-9) << "trial " << trial;
    EXPECT_DOUBLE_EQ(result.initial_cut, before);
  }
}

TEST(FmTest, RespectsMinSide) {
  // A star graph wants everything on one side; min_side must prevent it.
  FmGraph g;
  g.vertex_count = 6;
  for (int i = 1; i < 6; ++i) g.edges.push_back({0, i, 1.0});
  std::vector<int> initial = {0, 1, 1, 1, 1, 1};
  FmOptions options;
  options.min_side = 1;
  const FmResult result = fm_bipartition(g, initial, options);
  const auto count0 =
      std::count(result.side.begin(), result.side.end(), 0);
  EXPECT_GE(count0, 1);
  EXPECT_LE(count0, 5);
}

TEST(FmTest, BalanceConstraintHolds) {
  const FmGraph g = two_clusters(4, 1.0, 0.9);
  std::vector<int> initial(8, 0);
  for (int i = 4; i < 8; ++i) initial[static_cast<size_t>(i)] = 1;
  FmOptions options;
  options.max_side_fraction = 0.5;  // perfectly balanced halves only
  const FmResult result = fm_bipartition(g, initial, options);
  EXPECT_EQ(std::count(result.side.begin(), result.side.end(), 0), 4);
}

TEST(FmTest, DeterministicResults) {
  const FmGraph g = two_clusters(5, 3.0, 1.0);
  std::vector<int> initial(10);
  for (int i = 0; i < 10; ++i) initial[static_cast<size_t>(i)] = i % 2;
  const FmResult a = fm_bipartition(g, initial);
  const FmResult b = fm_bipartition(g, initial);
  EXPECT_EQ(a.side, b.side);
  EXPECT_DOUBLE_EQ(a.cut_weight, b.cut_weight);
}

TEST(FmTest, TrivialGraphs) {
  FmGraph empty;
  empty.vertex_count = 1;
  const FmResult r = fm_bipartition(empty, {0});
  EXPECT_EQ(r.side, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(r.cut_weight, 0.0);
}

// --------------------------------------------- physical_bipartition -------

TEST(PhysicalBipartitionTest, MinskySplitsBySocket) {
  const topo::TopologyGraph g = topo::builders::power8_minsky();
  const std::vector<int> gpus = {0, 1, 2, 3};
  const std::vector<int> side = physical_bipartition(gpus, g);
  EXPECT_EQ(side[0], side[1]);  // socket 0 stays together
  EXPECT_EQ(side[2], side[3]);  // socket 1 stays together
  EXPECT_NE(side[0], side[2]);
}

TEST(PhysicalBipartitionTest, ClusterSplitsByMachine) {
  const topo::TopologyGraph g =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  const std::vector<int> gpus = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<int> side = physical_bipartition(gpus, g);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(side[static_cast<size_t>(i)], side[0]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(side[static_cast<size_t>(i)], side[4]);
  EXPECT_NE(side[0], side[4]);
}

TEST(PhysicalBipartitionTest, IrregularAvailabilityStillSplits) {
  const topo::TopologyGraph g = topo::builders::power8_minsky();
  // Only one GPU per socket free.
  const std::vector<int> gpus = {1, 2};
  const std::vector<int> side = physical_bipartition(gpus, g);
  EXPECT_NE(side[0], side[1]);
}

// ---------------------------------------------------------------- DRB -----

/// Callbacks preferring pack: utility is inverse mean distance to the side
/// (a simplified stand-in for the scheduler's full utility).
class PackingCallbacks : public DrbCallbacks {
 public:
  explicit PackingCallbacks(const topo::TopologyGraph& topology)
      : topology_(topology) {}
  double task_utility(int, int side,
                      const BipartitionView& view) const override {
    const std::vector<int>& gpus = side == 0 ? view.gpus0 : view.gpus1;
    const std::vector<int>& tasks = side == 0 ? view.tasks0 : view.tasks1;
    if (gpus.empty()) return 0.0;
    // Prefer the side that already has tasks (keeps the job together) and
    // breaks ties toward side with more capacity.
    return static_cast<double>(tasks.size()) * 10.0 +
           static_cast<double>(gpus.size());
  }

 private:
  [[maybe_unused]] const topo::TopologyGraph& topology_;
};

TEST(DrbTest, MapsEveryTaskExactlyOnce) {
  const topo::TopologyGraph g = topo::builders::power8_minsky();
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(3, 4.0);
  const PackingCallbacks callbacks(g);
  const DrbResult result = drb_map(job, {0, 1, 2, 3}, g, callbacks);
  ASSERT_TRUE(result.complete);
  std::set<int> used(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(used.size(), 3u);  // distinct GPUs
  for (const int gpu : result.assignment) {
    EXPECT_GE(gpu, 0);
    EXPECT_LT(gpu, 4);
  }
}

TEST(DrbTest, TwoTaskJobPacksOnOneSocket) {
  const topo::TopologyGraph g = topo::builders::power8_minsky();
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(2, 4.0);
  const PackingCallbacks callbacks(g);
  const DrbResult result = drb_map(job, {0, 1, 2, 3}, g, callbacks);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(g.same_socket(result.assignment[0], result.assignment[1]));
}

TEST(DrbTest, IncompleteWhenCapacityExceeded) {
  const topo::TopologyGraph g = topo::builders::power8_minsky();
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(3, 4.0);
  const PackingCallbacks callbacks(g);
  const DrbResult result = drb_map(job, {0, 1}, g, callbacks);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.gpus().empty());
}

TEST(DrbTest, SingleNodeConstraintKeepsJobOnOneMachine) {
  const topo::TopologyGraph g =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(4, 4.0);
  const PackingCallbacks callbacks(g);
  DrbOptions options;
  options.span = SpanMode::kSingleNode;
  // All 8 GPUs free: the whole job must land on one machine.
  const DrbResult result =
      drb_map(job, {0, 1, 2, 3, 4, 5, 6, 7}, g, callbacks, options);
  ASSERT_TRUE(result.complete);
  const int machine = g.machine_of_gpu(result.assignment[0]);
  for (const int gpu : result.assignment) {
    EXPECT_EQ(g.machine_of_gpu(gpu), machine);
  }
}

TEST(DrbTest, SingleNodeFailsWhenNoMachineFits) {
  const topo::TopologyGraph g =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(3, 4.0);
  const PackingCallbacks callbacks(g);
  DrbOptions options;
  options.span = SpanMode::kSingleNode;
  // Two free GPUs on each machine: no single machine fits 3 tasks.
  const DrbResult result = drb_map(job, {0, 1, 4, 5}, g, callbacks, options);
  EXPECT_FALSE(result.complete);
}

TEST(DrbTest, PreferPackSpansMachinesWhenForced) {
  const topo::TopologyGraph g =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(3, 4.0);
  const PackingCallbacks callbacks(g);
  DrbOptions options;
  options.span = SpanMode::kPreferPack;
  const DrbResult result = drb_map(job, {0, 1, 4, 5}, g, callbacks, options);
  ASSERT_TRUE(result.complete);  // spans machines rather than failing
  std::set<int> machines;
  for (const int gpu : result.assignment) machines.insert(g.machine_of_gpu(gpu));
  EXPECT_EQ(machines.size(), 2u);
}

TEST(DrbTest, AntiCollocatePlacesTasksOnDistinctMachines) {
  const topo::TopologyGraph g =
      topo::builders::cluster(3, MachineShape::kPower8Minsky);
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(3, 1.0);
  const PackingCallbacks callbacks(g);
  DrbOptions options;
  options.span = SpanMode::kAntiCollocate;
  std::vector<int> all(12);
  for (int i = 0; i < 12; ++i) all[static_cast<size_t>(i)] = i;
  const DrbResult result = drb_map(job, all, g, callbacks, options);
  ASSERT_TRUE(result.complete);
  std::set<int> machines;
  for (const int gpu : result.assignment) machines.insert(g.machine_of_gpu(gpu));
  EXPECT_EQ(machines.size(), 3u);
}

TEST(DrbTest, StatsAccumulate) {
  const topo::TopologyGraph g = topo::builders::power8_minsky();
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(4, 4.0);
  const PackingCallbacks callbacks(g);
  const DrbResult result = drb_map(job, {0, 1, 2, 3}, g, callbacks);
  EXPECT_GT(result.stats.bipartitions, 0);
  EXPECT_GT(result.stats.max_depth, 0);
}

TEST(DrbTest, DeterministicAssignment) {
  const topo::TopologyGraph g =
      topo::builders::cluster(4, MachineShape::kPower8Minsky);
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(4, 4.0);
  const PackingCallbacks callbacks(g);
  std::vector<int> all(16);
  for (int i = 0; i < 16; ++i) all[static_cast<size_t>(i)] = i;
  const DrbResult a = drb_map(job, all, g, callbacks);
  const DrbResult b = drb_map(job, all, g, callbacks);
  EXPECT_EQ(a.assignment, b.assignment);
}

// Property sweep: random availability masks on a cluster; DRB must either
// produce a valid complete assignment or report incompleteness.
class DrbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DrbPropertyTest, ValidAssignmentsUnderRandomAvailability) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const topo::TopologyGraph g =
      topo::builders::cluster(3, MachineShape::kPower8Minsky);
  const PackingCallbacks callbacks(g);

  std::vector<int> available;
  for (int gpu = 0; gpu < g.gpu_count(); ++gpu) {
    if (rng.uniform() < 0.6) available.push_back(gpu);
  }
  const int tasks = 1 + static_cast<int>(rng.uniform_int(4));
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(tasks, 4.0);
  const DrbResult result = drb_map(job, available, g, callbacks);

  if (static_cast<int>(available.size()) < tasks) {
    EXPECT_FALSE(result.complete);
    return;
  }
  if (result.complete) {
    std::set<int> used;
    for (const int gpu : result.assignment) {
      EXPECT_TRUE(std::find(available.begin(), available.end(), gpu) !=
                  available.end())
          << "assigned GPU not in available set";
      used.insert(gpu);
    }
    EXPECT_EQ(used.size(), static_cast<size_t>(tasks));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomAvailability, DrbPropertyTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace gts::partition
