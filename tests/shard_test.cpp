// Sharded-scheduling differential suite (DESIGN.md section 19).
//
// The load-bearing guarantees of src/shard/ are all *relative* to the
// unsharded sched::Driver, so nearly every test here is differential:
//   * cell extraction preserves machine/GPU structure and id mappings;
//   * a 1-shard ShardedDriver is byte-identical to a plain Driver on the
//     Fig. 8 prototype workload and on a 500-job generated trace;
//   * an N-shard run is byte-identical for --shard-threads {1, 2, 8};
//   * the router's Filter stage is sound: it never rejects a shard the
//     full scheduler would have placed the job into (checked over seeded
//     random occupancy patterns);
//   * a sharded ServiceCore snapshot restores and re-snapshots
//     byte-identically, and the continuation matches the uninterrupted
//     run verb-for-verb.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/recorder.hpp"
#include "cluster/state.hpp"
#include "exp/scenarios.hpp"
#include "jobgraph/manifest.hpp"
#include "perf/profile.hpp"
#include "sched/driver.hpp"
#include "shard/cells.hpp"
#include "shard/sharded_driver.hpp"
#include "shard/summary.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace gts::shard {
namespace {

using jobgraph::JobRequest;
using jobgraph::NeuralNet;
using topo::builders::MachineShape;

/// Field-by-field bitwise comparison of two job records. EXPECT_EQ on the
/// doubles is deliberate: "byte-identical" means the same bits, not
/// nearly-equal values.
void expect_identical_record(const cluster::JobRecord& got,
                             const cluster::JobRecord& want,
                             const std::string& label) {
  EXPECT_EQ(got.id, want.id) << label;
  EXPECT_EQ(got.num_gpus, want.num_gpus) << label << " job " << want.id;
  EXPECT_EQ(got.arrival, want.arrival) << label << " job " << want.id;
  EXPECT_EQ(got.start, want.start) << label << " job " << want.id;
  EXPECT_EQ(got.end, want.end) << label << " job " << want.id;
  EXPECT_EQ(got.cancelled, want.cancelled) << label << " job " << want.id;
  EXPECT_EQ(got.gpus, want.gpus) << label << " job " << want.id;
  EXPECT_EQ(got.placement_utility, want.placement_utility)
      << label << " job " << want.id;
  EXPECT_EQ(got.p2p, want.p2p) << label << " job " << want.id;
  EXPECT_EQ(got.best_solo_time, want.best_solo_time)
      << label << " job " << want.id;
  EXPECT_EQ(got.postponements, want.postponements)
      << label << " job " << want.id;
  EXPECT_EQ(got.degradation_events, want.degradation_events)
      << label << " job " << want.id;
}

void expect_identical_recorders(const cluster::Recorder& got,
                                const cluster::Recorder& want,
                                const std::string& label) {
  ASSERT_EQ(got.records().size(), want.records().size()) << label;
  for (const cluster::JobRecord& record : want.records()) {
    const cluster::JobRecord* other = got.find(record.id);
    ASSERT_NE(other, nullptr) << label << " missing job " << record.id;
    expect_identical_record(*other, record, label);
  }
}

// --- cell extraction --------------------------------------------------------

TEST(CellPartitionTest, SplitsContiguouslyWithRemainderUpFront) {
  const auto even = partition_machines(10, 2);
  ASSERT_EQ(even.size(), 2u);
  EXPECT_EQ(even[0], (std::pair<int, int>{0, 5}));
  EXPECT_EQ(even[1], (std::pair<int, int>{5, 10}));

  // 10 = 4 + 3 + 3: the first machines % shards cells get the extra.
  const auto uneven = partition_machines(10, 3);
  ASSERT_EQ(uneven.size(), 3u);
  EXPECT_EQ(uneven[0], (std::pair<int, int>{0, 4}));
  EXPECT_EQ(uneven[1], (std::pair<int, int>{4, 7}));
  EXPECT_EQ(uneven[2], (std::pair<int, int>{7, 10}));

  // Shard count clamps to the machine count (never an empty cell).
  const auto clamped = partition_machines(3, 8);
  ASSERT_EQ(clamped.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(clamped[static_cast<size_t>(m)],
              (std::pair<int, int>{m, m + 1}));
  }
}

TEST(CellPartitionTest, ExtractCellPreservesStructureAndIdMaps) {
  const topo::TopologyGraph cluster =
      topo::builders::cluster(6, MachineShape::kPower8Minsky);
  const int per_machine = cluster.gpu_count() / 6;

  const CellTopology cell = extract_cell(cluster, 2, 5);
  EXPECT_EQ(cell.machine_begin, 2);
  EXPECT_EQ(cell.graph.machine_count(), 3);
  EXPECT_EQ(cell.graph.gpu_count(), 3 * per_machine);
  ASSERT_EQ(cell.gpu_to_global.size(),
            static_cast<size_t>(cell.graph.gpu_count()));
  // Global ids are dense, ascending, and each local GPU sits on the
  // machine its global twin occupies (shifted by machine_begin).
  EXPECT_TRUE(std::is_sorted(cell.gpu_to_global.begin(),
                             cell.gpu_to_global.end()));
  for (int local = 0; local < cell.graph.gpu_count(); ++local) {
    const int global = cell.gpu_to_global[static_cast<size_t>(local)];
    EXPECT_EQ(cell.graph.machine_of_gpu(local) + 2,
              cluster.machine_of_gpu(global))
        << "local gpu " << local;
  }

  // A single-machine cell matches the standalone machine graph shape:
  // no synthetic network root.
  const CellTopology solo = extract_cell(cluster, 5, 6);
  EXPECT_EQ(solo.graph.machine_count(), 1);
  EXPECT_EQ(solo.graph.gpu_count(), per_machine);
  EXPECT_EQ(solo.graph.node_count(),
            topo::builders::power8_minsky().node_count());
}

// --- 1-shard byte-identity --------------------------------------------------

class ShardDifferentialTest : public ::testing::Test {
 protected:
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};

  sched::DriverReport run_unsharded(const topo::TopologyGraph& topology,
                                    std::vector<JobRequest> jobs) {
    const auto scheduler = sched::make_scheduler(sched::Policy::kTopoAwareP);
    sched::Driver driver(topology, model_, *scheduler);
    return driver.run(std::move(jobs));
  }

  sched::DriverReport run_sharded(const topo::TopologyGraph& topology,
                                  std::vector<JobRequest> jobs, int shards,
                                  int shard_threads = 1) {
    ShardedOptions options;
    options.shards = shards;
    options.shard_threads = shard_threads;
    ShardedDriver driver(topology, model_, options);
    return driver.run(std::move(jobs));
  }
};

TEST_F(ShardDifferentialTest, OneShardMatchesDriverOnFig8Workload) {
  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  const auto jobs = exp::table1_jobs(model_, topology, /*iterations=*/700);

  const sched::DriverReport want = run_unsharded(topology, jobs);
  const sched::DriverReport got = run_sharded(topology, jobs, /*shards=*/1);

  expect_identical_recorders(got.recorder, want.recorder, "fig8");
  EXPECT_EQ(got.decision_count, want.decision_count);
  EXPECT_EQ(got.recorder.makespan(), want.recorder.makespan());
}

TEST_F(ShardDifferentialTest, OneShardMatchesDriverOn500JobTrace) {
  const topo::TopologyGraph topology = topo::builders::make_cluster(
      4, 4, MachineShape::kPower8Minsky);
  trace::GeneratorOptions options;
  options.job_count = 500;
  options.iterations = 400;
  options.seed = 42;
  const auto jobs = trace::generate_workload(options, model_, topology);
  ASSERT_EQ(jobs.size(), 500u);

  const sched::DriverReport want = run_unsharded(topology, jobs);
  const sched::DriverReport got = run_sharded(topology, jobs, /*shards=*/1);

  expect_identical_recorders(got.recorder, want.recorder, "trace500");
  EXPECT_EQ(got.decision_count, want.decision_count);
  EXPECT_EQ(got.rejected_jobs, want.rejected_jobs);
}

// --- shard-thread determinism -----------------------------------------------

TEST_F(ShardDifferentialTest, ShardThreadsAreByteIdentical) {
  const topo::TopologyGraph topology = topo::builders::make_cluster(
      8, 4, MachineShape::kPower8Minsky);
  trace::GeneratorOptions options;
  options.job_count = 300;
  options.iterations = 400;
  options.seed = 7;
  const auto jobs = trace::generate_workload(options, model_, topology);

  const sched::DriverReport serial =
      run_sharded(topology, jobs, /*shards=*/4, /*shard_threads=*/1);
  for (const int threads : {2, 8}) {
    const sched::DriverReport pooled =
        run_sharded(topology, jobs, /*shards=*/4, threads);
    expect_identical_recorders(pooled.recorder, serial.recorder,
                               "threads=" + std::to_string(threads));
    EXPECT_EQ(pooled.decision_count, serial.decision_count);
    EXPECT_EQ(pooled.rejected_jobs, serial.rejected_jobs);
  }
}

TEST_F(ShardDifferentialTest, ShardedRunPlacesEveryGlobalGpuOnce) {
  // Structural sanity of the global id space: concurrent records never
  // share a GPU, and every published id is within the cluster.
  const topo::TopologyGraph topology = topo::builders::make_cluster(
      6, 4, MachineShape::kPower8Minsky);
  trace::GeneratorOptions options;
  options.job_count = 120;
  options.iterations = 300;
  options.seed = 11;
  const auto jobs = trace::generate_workload(options, model_, topology);

  const sched::DriverReport report =
      run_sharded(topology, jobs, /*shards=*/3);
  for (const cluster::JobRecord& a : report.recorder.records()) {
    if (!a.placed()) continue;
    for (const int gpu : a.gpus) {
      EXPECT_GE(gpu, 0);
      EXPECT_LT(gpu, topology.gpu_count());
    }
    for (const cluster::JobRecord& b : report.recorder.records()) {
      if (b.id <= a.id || !b.placed()) continue;
      const bool overlap_in_time =
          a.start < (b.finished() ? b.end : b.start + 1.0) &&
          b.start < (a.finished() ? a.end : a.start + 1.0);
      if (!overlap_in_time) continue;
      for (const int gpu : a.gpus) {
        EXPECT_EQ(std::count(b.gpus.begin(), b.gpus.end(), gpu), 0)
            << "jobs " << a.id << " and " << b.id << " share gpu " << gpu;
      }
    }
  }
}

// --- router Filter soundness ------------------------------------------------

TEST(ShardRouterTest, FilterNeverRejectsAPlaceableShard) {
  // The Filter may only reject on *necessary* conditions: whenever the
  // full scheduler can place a job into a cell's current state, the
  // Filter must admit that cell. Checked over seeded random occupancy.
  const perf::DlWorkloadModel model{perf::CalibrationParams::paper_minsky()};
  const topo::TopologyGraph cell = topo::builders::make_cluster(
      3, 4, MachineShape::kPower8Minsky);

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    cluster::ClusterState state(cell, model);
    CellSummary summary(cell);
    state.set_allocation_listener(
        [&summary](std::span<const int> gpus, bool allocated) {
          summary.on_allocation(gpus, allocated);
        });
    const auto scheduler = sched::make_scheduler(sched::Policy::kTopoAwareP);

    // Seeded random occupancy: keep placing random-size blockers until
    // one fails; min_utility 0 so the scheduler never declines by SLO.
    std::uint64_t rng = seed * 2654435761u + 1;
    const auto next = [&rng](int bound) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<int>((rng >> 33) % static_cast<std::uint64_t>(bound));
    };
    int blocker_id = 1000;
    for (int k = next(10); k >= 0; --k) {
      const int gpus = 1 << next(3);  // 1, 2 or 4
      const JobRequest blocker = perf::make_profiled_dl(
          blocker_id++, 0.0, NeuralNet::kAlexNet, 4, gpus, 0.0, model, cell);
      const auto placement = scheduler->place(blocker, state);
      if (!placement) break;
      state.place(blocker, placement->gpus, 0.0, placement->utility);
    }
    ASSERT_EQ(summary.free_total(), state.free_gpu_count())
        << "summary drifted at seed " << seed;

    // Probes: every job size x constraint combination must obey the
    // implication place-able => Filter-admitted.
    const ShardCandidate candidate{&summary, &cell, /*queue_depth=*/0};
    int probe_id = 1;
    for (const int gpus : {1, 2, 3, 4}) {
      for (const bool anti : {false, true}) {
        JobRequest probe = perf::make_profiled_dl(
            probe_id++, 0.0, NeuralNet::kGoogLeNet, 4, gpus, 0.0, model,
            cell);
        if (anti) {
          probe.profile.single_node = false;
          probe.profile.anti_collocate = true;
        }
        const auto placement = scheduler->place(probe, state);
        if (placement.has_value()) {
          EXPECT_TRUE(filter_admits(probe, candidate, model))
              << "seed " << seed << " gpus " << gpus << " anti " << anti
              << ": Filter rejected a placeable cell";
        }
      }
    }
  }
}

TEST(ShardRouterTest, ScoreBreaksTiesTowardLowestShard) {
  const perf::DlWorkloadModel model{perf::CalibrationParams::paper_minsky()};
  const topo::TopologyGraph a = topo::builders::power8_minsky();
  const topo::TopologyGraph b = topo::builders::power8_minsky();
  const CellSummary sa(a), sb(b);
  const JobRequest job = perf::make_profiled_dl(
      1, 0.0, NeuralNet::kAlexNet, 4, 2, 0.0, model, a);
  const std::vector<ShardCandidate> candidates = {
      ShardCandidate{&sa, &a, 0}, ShardCandidate{&sb, &b, 0}};
  const RouteDecision decision = route_job(job, candidates, model);
  EXPECT_EQ(decision.shard, 0);
  EXPECT_EQ(decision.filtered, 0);
  EXPECT_FALSE(decision.exhausted);
}

// --- sharded service snapshot/restore ---------------------------------------

class ShardedServiceTest : public ::testing::Test {
 protected:
  ShardedServiceTest()
      : topology_(topo::builders::make_cluster(
            8, 4, MachineShape::kPower8Minsky)),
        model_(perf::CalibrationParams::paper_minsky()) {}

  svc::ServiceCore make_core(int shards, int shard_threads = 2) {
    svc::ServiceOptions options;
    options.config.max_queue = 256;
    options.config.shard_count = shards;
    options.config.shard_threads = shard_threads;
    options.self_audit = true;
    return svc::ServiceCore(topology_, model_, options);
  }

  static svc::Request make_request(long long id, std::string verb,
                                   json::Value params = {}) {
    svc::Request request;
    request.id = id;
    request.verb = std::move(verb);
    request.params = std::move(params);
    return request;
  }

  svc::Response submit(svc::ServiceCore& core, const JobRequest& job,
                       long long request_id) {
    json::Value params;
    params.set("job", jobgraph::to_manifest(job));
    return core.handle(make_request(request_id, "submit", std::move(params)));
  }

  JobRequest job(int id, double arrival, int gpus) {
    return perf::make_profiled_dl(id, arrival, NeuralNet::kAlexNet, 4, gpus,
                                  gpus > 1 ? 0.5 : 0.3, model_, topology_,
                                  /*iterations=*/600);
  }

  topo::TopologyGraph topology_;
  perf::DlWorkloadModel model_;
};

TEST_F(ShardedServiceTest, SnapshotRestoreReSnapshotsByteIdentically) {
  svc::ServiceCore original = make_core(/*shards=*/4);
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(submit(original, job(i, 1.5 * i, 1 + (i % 3)), i).ok);
  }
  // Mid-flight: some running across cells, some waiting, some pending.
  json::Value advance_params;
  advance_params.set("to", 9.0);
  ASSERT_TRUE(
      original.handle(make_request(50, "advance", advance_params)).ok);

  const svc::Response snap = original.handle(make_request(51, "snapshot"));
  ASSERT_TRUE(snap.ok) << snap.message;
  const json::Value snapshot = snap.result.at("snapshot");
  ASSERT_TRUE(svc::validate_snapshot_json(snapshot));

  svc::ServiceCore restored = make_core(/*shards=*/4);
  const auto status = restored.restore_json(snapshot);
  ASSERT_TRUE(status) << status.error().message;
  ASSERT_TRUE(restored.driver().validate());
  EXPECT_EQ(restored.driver().shard_count(), 4);

  EXPECT_EQ(json::write(restored.snapshot_json(), {.indent = 2}),
            json::write(snapshot, {.indent = 2}));

  // The continuation matches the uninterrupted run verb-for-verb.
  for (svc::ServiceCore* core : {&original, &restored}) {
    ASSERT_TRUE(core->handle(make_request(60, "drain")).ok);
  }
  json::Value detail;
  detail.set("detail", true);
  EXPECT_EQ(encode(original.handle(make_request(61, "list", detail))),
            encode(restored.handle(make_request(61, "list", detail))));
  for (int i = 1; i <= 12; ++i) {
    json::Value params;
    params.set("id", i);
    EXPECT_EQ(encode(original.handle(make_request(70 + i, "status", params))),
              encode(restored.handle(make_request(70 + i, "status", params))))
        << "job " << i << " diverged after restore";
  }
}

TEST_F(ShardedServiceTest, ShardsVerbReportsEveryCell) {
  svc::ServiceCore core = make_core(/*shards=*/4);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(submit(core, job(i, 0.0, 2), i).ok);
  }
  json::Value advance_params;
  advance_params.set("to", 1.0);
  ASSERT_TRUE(core.handle(make_request(20, "advance", advance_params)).ok);

  const svc::Response response = core.handle(make_request(21, "shards"));
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.result.at("shards").as_int(), 4);
  const auto& cells = response.result.at("cells").as_array();
  ASSERT_EQ(cells.size(), 4u);
  long long machines = 0;
  long long gpus = 0;
  long long routed = 0;
  for (const json::Value& cell : cells) {
    machines += cell.at("machines").as_int();
    gpus += cell.at("gpus").as_int();
    routed += cell.at("routed").as_int();
  }
  EXPECT_EQ(machines, 8);
  EXPECT_EQ(gpus, topology_.gpu_count());
  EXPECT_EQ(routed, 6);
  EXPECT_EQ(response.result.at("router").at("routed").as_int(), 6);
}

}  // namespace
}  // namespace gts::shard
