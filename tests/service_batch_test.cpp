// Batched admission (DESIGN.md §17.4): draining up to batch_max queued
// requests into one ServiceCore entry — and, at the Server layer,
// framing/parsing lines off the inline dispatch path — must be invisible
// on the wire. ServiceCore::handle_batch is held byte-identical to N
// sequential handle() calls (including backpressure), the batched Server
// reply stream is held byte-identical to the batch_max == 1 oracle
// (including mid-pipeline parse errors), a concurrent multi-client
// stress run lands the same final cluster state as an unbatched single
// client, and a snapshot taken between batches restores into a core that
// finishes the remaining batches identically. The multi-client test is a
// TSan target (parse pool + reactor + client threads).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "jobgraph/manifest.hpp"
#include "perf/model.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

namespace gts::svc {
namespace {

jobgraph::JobRequest dl_job(int id, double arrival, int num_gpus,
                            long long iterations = 200) {
  return jobgraph::JobRequest::make_dl(id, arrival,
                                       jobgraph::NeuralNet::kAlexNet, 4,
                                       num_gpus, 0.4, iterations);
}

Request make_request(long long id, std::string verb,
                     json::Value params = {}) {
  Request request;
  request.id = id;
  request.verb = std::move(verb);
  request.params = std::move(params);
  return request;
}

Request submit_request(long long request_id, const jobgraph::JobRequest& job) {
  json::Value params;
  params.set("job", jobgraph::to_manifest(job));
  return make_request(request_id, "submit", std::move(params));
}

/// Raw pipelined session: connect, write every line in ONE send, then
/// read reply lines until `expected_replies` arrived or the daemon closed
/// the connection. Client can't do this — it is strictly one outstanding
/// request — and pipelining is exactly what batching must keep ordered.
std::vector<std::string> pipelined_session(const std::string& socket_path,
                                           const std::string& bytes,
                                           int expected_replies) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<size_t>(n);
  }
  std::string in;
  std::vector<std::string> lines;
  char buffer[4096];
  while (static_cast<int>(lines.size()) < expected_replies) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // daemon closed (parse-error sessions end early)
    in.append(buffer, static_cast<size_t>(n));
    size_t start = 0, newline;
    while ((newline = in.find('\n', start)) != std::string::npos) {
      lines.push_back(in.substr(start, newline - start));
      start = newline + 1;
    }
    in.erase(0, start);
  }
  ::close(fd);
  return lines;
}

class ServiceBatchTest : public ::testing::Test {
 protected:
  ServiceBatchTest()
      : topology_(topo::builders::cluster(
            2, topo::builders::MachineShape::kPower8Minsky)),
        model_(perf::CalibrationParams::paper_minsky()) {}

  ServiceCore make_core(int max_queue = 64) {
    ServiceOptions options;
    options.config.max_queue = max_queue;
    options.config.retry_after_ms = 25.0;
    return ServiceCore(topology_, model_, options);
  }

  topo::TopologyGraph topology_;
  perf::DlWorkloadModel model_;
};

// --- core layer -------------------------------------------------------------

// handle_batch(requests) answers exactly like N sequential handle()
// calls — same placements, same backpressure refusals at the same
// positions, byte-for-byte on the encoded responses.
TEST_F(ServiceBatchTest, HandleBatchMatchesOneAtATimeIncludingBackpressure) {
  // max_queue 4 with 10 submits before any time advances: the first four
  // are admitted, the rest bounce with backpressure, then an advance
  // frees the queue and the re-submits land.
  std::vector<Request> script;
  for (int id = 1; id <= 10; ++id) {
    script.push_back(submit_request(id, dl_job(id, 0.5 * id, 1)));
  }
  {
    json::Value params;
    params.set("all", true);
    script.push_back(make_request(40, "advance", std::move(params)));
  }
  for (int id = 5; id <= 10; ++id) {
    script.push_back(submit_request(40 + id, dl_job(id, 0.5 * id, 1)));
  }
  {
    json::Value params;
    params.set("all", true);
    script.push_back(make_request(80, "advance", std::move(params)));
  }
  script.push_back(make_request(81, "list"));

  ServiceCore serial = make_core(/*max_queue=*/4);
  std::vector<std::string> oracle;
  oracle.reserve(script.size());
  for (const Request& request : script) {
    oracle.push_back(encode(serial.handle(request)));
  }
  ASSERT_NE(oracle[4].find("backpressure"), std::string::npos);

  ServiceCore batched = make_core(/*max_queue=*/4);
  const std::vector<Response> responses = batched.handle_batch(script);
  ASSERT_EQ(responses.size(), script.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(encode(responses[i]), oracle[i]) << "request " << i;
  }

  // And batching in smaller chunks is the same thing again.
  ServiceCore chunked = make_core(/*max_queue=*/4);
  std::vector<std::string> chunked_replies;
  for (size_t start = 0; start < script.size(); start += 3) {
    const std::vector<Request> chunk(
        script.begin() + static_cast<std::ptrdiff_t>(start),
        script.begin() + static_cast<std::ptrdiff_t>(
                             std::min(start + 3, script.size())));
    for (const Response& response : chunked.handle_batch(chunk)) {
      chunked_replies.push_back(encode(response));
    }
  }
  EXPECT_EQ(chunked_replies, oracle);
}

// --- server layer -----------------------------------------------------------

std::vector<std::string> run_server_session(
    const topo::TopologyGraph& topology, const perf::DlWorkloadModel& model,
    int batch_max, int parse_threads, const std::string& bytes,
    int expected_replies) {
  ServiceOptions service_options;
  service_options.config.max_queue = 64;
  ServiceCore core(topology, model, service_options);
  const std::string socket_path =
      util::fmt("./svc_batch_{}_{}.sock", static_cast<int>(::getpid()),
                batch_max);
  ServerOptions server_options;
  server_options.unix_socket = socket_path;
  server_options.batch_max = batch_max;
  server_options.parse_threads = parse_threads;
  Server server(core, server_options);
  if (!server.start()) return {};
  std::thread server_thread([&server] { (void)server.run(); });
  const std::vector<std::string> replies =
      pipelined_session(socket_path, bytes, expected_replies);
  server.stop();
  server_thread.join();
  return replies;
}

// A pipelined burst of valid requests produces the same reply stream from
// a batched server (batch_max 4, parse pool) as from the inline oracle —
// including when the burst is larger than one batch, so leftovers cross
// poll rounds.
TEST_F(ServiceBatchTest, BatchedServerReplyStreamMatchesInlineOracle) {
  std::string bytes;
  int count = 0;
  for (int id = 1; id <= 12; ++id) {
    bytes += encode(submit_request(id, dl_job(id, 1.0 * id, 1)));
    ++count;
  }
  json::Value advance_params;
  advance_params.set("all", true);
  bytes += encode(make_request(50, "advance", std::move(advance_params)));
  bytes += encode(make_request(51, "list"));
  count += 2;

  const std::vector<std::string> oracle = run_server_session(
      topology_, model_, /*batch_max=*/1, /*parse_threads=*/0, bytes, count);
  ASSERT_EQ(static_cast<int>(oracle.size()), count);
  const std::vector<std::string> batched = run_server_session(
      topology_, model_, /*batch_max=*/4, /*parse_threads=*/2, bytes, count);
  EXPECT_EQ(batched, oracle);
}

// A malformed line mid-pipeline: replies up to and including the parse
// failure match the oracle byte-for-byte, the failure addresses id 0,
// and the session closes with the remaining pipelined lines dropped —
// identical semantics in both modes.
TEST_F(ServiceBatchTest, MidPipelineParseErrorClosesIdenticallyWhenBatched) {
  std::string bytes;
  bytes += encode(submit_request(1, dl_job(1, 1.0, 1)));
  bytes += encode(submit_request(2, dl_job(2, 2.0, 1)));
  bytes += "{\"v\":1,\"id\":3,\"verb\":\"submit\",";  // truncated JSON
  bytes += "\n";
  bytes += encode(submit_request(4, dl_job(4, 4.0, 1)));  // must be dropped

  // Ask for more replies than can come; EOF ends the read.
  const std::vector<std::string> oracle = run_server_session(
      topology_, model_, /*batch_max=*/1, /*parse_threads=*/0, bytes, 10);
  ASSERT_EQ(oracle.size(), 3u);
  EXPECT_NE(oracle[2].find("\"parse\""), std::string::npos);
  EXPECT_NE(oracle[2].find("\"id\":0"), std::string::npos);
  for (const int parse_threads : {0, 2}) {
    const std::vector<std::string> batched =
        run_server_session(topology_, model_, /*batch_max=*/4, parse_threads,
                           bytes, 10);
    EXPECT_EQ(batched, oracle) << "parse_threads=" << parse_threads;
  }
}

// --- concurrency ------------------------------------------------------------

// Four clients hammer a batched daemon concurrently; once everything is
// submitted and drained, the terminal state (finished set) matches an
// unbatched single-client run of the same jobs. Arrival times are part
// of the manifests and the driver queues by arrival, so placements are
// independent of submission interleaving. TSan runs this to hold the
// parse pool + reactor confinement honest.
TEST_F(ServiceBatchTest, ConcurrentClientsOnBatchedServerMatchSerialRun) {
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 5;
  constexpr int kJobs = kClients * kJobsPerClient;

  const auto finished_ids = [&](Server& server,
                                const std::string& socket_path,
                                auto&& submit_all) -> std::vector<long long> {
    const bool started = static_cast<bool>(server.start());
    EXPECT_TRUE(started) << "server start failed";
    if (!started) return {};
    std::thread server_thread([&server] { (void)server.run(); });
    submit_all(socket_path);
    auto control = Client::connect_unix(socket_path);
    EXPECT_TRUE(control.has_value());
    std::vector<long long> ids;
    if (control.has_value()) {
      const auto drained = control->call("drain");
      EXPECT_TRUE(drained.has_value() && drained->ok);
      const auto listing = control->call("list");
      EXPECT_TRUE(listing.has_value() && listing->ok);
      if (listing.has_value() && listing->ok) {
        for (const json::Value& id :
             listing->result.at("finished").as_array()) {
          ids.push_back(id.as_int());
        }
      }
    }
    server.stop();
    server_thread.join();
    return ids;
  };

  // Oracle: one client, unbatched server, jobs in id order.
  ServiceOptions service_options;
  service_options.config.max_queue = 64;
  ServiceCore serial_core(topology_, model_, service_options);
  const std::string serial_socket =
      util::fmt("./svc_batch_serial_{}.sock", static_cast<int>(::getpid()));
  ServerOptions serial_options;
  serial_options.unix_socket = serial_socket;
  Server serial_server(serial_core, serial_options);
  std::vector<long long> oracle =
      finished_ids(serial_server, serial_socket,
                   [&](const std::string& path) {
                     auto client = Client::connect_unix(path);
                     ASSERT_TRUE(client.has_value());
                     for (int id = 1; id <= kJobs; ++id) {
                       json::Value params;
                       params.set("job", jobgraph::to_manifest(
                                             dl_job(id, 1.0 * id, 1, 150)));
                       const auto response = client->call("submit", params);
                       ASSERT_TRUE(response.has_value());
                       EXPECT_TRUE(response->ok) << "job " << id;
                     }
                   });
  ASSERT_EQ(oracle.size(), static_cast<size_t>(kJobs));

  // Batched daemon, concurrent clients, interleaved submission order.
  ServiceCore batched_core(topology_, model_, service_options);
  const std::string batched_socket =
      util::fmt("./svc_batch_conc_{}.sock", static_cast<int>(::getpid()));
  ServerOptions batched_options;
  batched_options.unix_socket = batched_socket;
  batched_options.batch_max = 4;
  batched_options.parse_threads = 2;
  Server batched_server(batched_core, batched_options);
  std::vector<long long> batched =
      finished_ids(batched_server, batched_socket,
                   [&](const std::string& path) {
                     std::vector<std::thread> clients;
                     clients.reserve(kClients);
                     for (int c = 0; c < kClients; ++c) {
                       clients.emplace_back([&, c] {
                         auto client = Client::connect_unix(path);
                         ASSERT_TRUE(client.has_value());
                         for (int j = 0; j < kJobsPerClient; ++j) {
                           const int id = 1 + c * kJobsPerClient + j;
                           json::Value params;
                           params.set("job",
                                      jobgraph::to_manifest(
                                          dl_job(id, 1.0 * id, 1, 150)));
                           const auto response =
                               client->call("submit", params);
                           ASSERT_TRUE(response.has_value());
                           EXPECT_TRUE(response->ok) << "job " << id;
                         }
                       });
                     }
                     for (std::thread& thread : clients) thread.join();
                   });

  std::sort(oracle.begin(), oracle.end());
  std::sort(batched.begin(), batched.end());
  EXPECT_EQ(batched, oracle);
}

// --- snapshot ---------------------------------------------------------------

// A snapshot taken between batches captures a consistent admission state:
// restoring it into a fresh core and replaying the remaining batches
// yields byte-identical responses and terminal state.
TEST_F(ServiceBatchTest, SnapshotBetweenBatchesRestoresContinuation) {
  std::vector<Request> first_batch;
  for (int id = 1; id <= 6; ++id) {
    first_batch.push_back(submit_request(id, dl_job(id, 0.5 * id, 1)));
  }
  std::vector<Request> second_batch;
  for (int id = 7; id <= 10; ++id) {
    second_batch.push_back(submit_request(id, dl_job(id, 0.5 * id, 1)));
  }
  {
    json::Value params;
    params.set("all", true);
    second_batch.push_back(make_request(30, "advance", std::move(params)));
  }
  second_batch.push_back(make_request(31, "list"));

  ServiceCore original = make_core();
  (void)original.handle_batch(first_batch);
  const json::Value snapshot = original.snapshot_json();
  std::vector<std::string> original_replies;
  for (const Response& response : original.handle_batch(second_batch)) {
    original_replies.push_back(encode(response));
  }

  ServiceCore restored = make_core();
  ASSERT_TRUE(restored.restore_json(snapshot));
  std::vector<std::string> restored_replies;
  for (const Response& response : restored.handle_batch(second_batch)) {
    restored_replies.push_back(encode(response));
  }
  EXPECT_EQ(restored_replies, original_replies);
}

}  // namespace
}  // namespace gts::svc
