#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "perf/profile.hpp"
#include "trace/generator.hpp"
#include "sched/driver.hpp"
#include "topo/builders.hpp"

namespace gts::sched {
namespace {

using jobgraph::JobRequest;
using jobgraph::NeuralNet;

class DriverTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};

  JobRequest job(int id, double arrival, int gpus, int batch = 1,
                 long long iterations = 400) {
    return perf::make_profiled_dl(id, arrival, NeuralNet::kAlexNet, batch,
                                  gpus, gpus > 1 ? 0.5 : 0.3, model_, topo_,
                                  iterations);
  }

  DriverReport run(Policy policy, std::vector<JobRequest> jobs) {
    const auto scheduler = make_scheduler(policy);
    Driver driver(topo_, model_, *scheduler);
    return driver.run(std::move(jobs));
  }
};

TEST_F(DriverTest, SingleJobRunsToCompletion) {
  const DriverReport report = run(Policy::kFcfs, {job(0, 1.0, 1)});
  const cluster::JobRecord* record = report.recorder.find(0);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->finished());
  EXPECT_DOUBLE_EQ(record->start, 1.0);
  // 400 iterations at 25 ms solo.
  EXPECT_NEAR(record->end, 1.0 + 400 * 0.025, 0.1);
  EXPECT_EQ(report.rejected_jobs, 0);
  EXPECT_GT(report.decision_count, 0);
}

TEST_F(DriverTest, CompletionTimesReflectInterference) {
  // Two identical 2-GPU jobs, one per socket: each suffers the Fig. 6
  // tiny|tiny machine-level slowdown (30%).
  const DriverReport report =
      run(Policy::kFcfs, {job(0, 0.0, 2), job(1, 0.0, 2)});
  const cluster::JobRecord* a = report.recorder.find(0);
  ASSERT_TRUE(a->finished());
  const double solo = 400 * 0.075;
  EXPECT_NEAR(a->execution_time(), solo * 1.30, solo * 0.02);
}

TEST_F(DriverTest, QueuedJobStartsWhenGpusFree) {
  // Machine full until job 0 finishes.
  std::vector<JobRequest> jobs = {job(0, 0.0, 4), job(1, 1.0, 2)};
  const DriverReport report = run(Policy::kFcfs, jobs);
  const cluster::JobRecord* first = report.recorder.find(0);
  const cluster::JobRecord* second = report.recorder.find(1);
  ASSERT_TRUE(first->finished());
  ASSERT_TRUE(second->finished());
  EXPECT_NEAR(second->start, first->end, 1e-6);
  EXPECT_GT(second->waiting_time(), 0.0);
}

TEST_F(DriverTest, FcfsBlocksBehindHeadOfLine) {
  // Head job needs 4 GPUs (waits for job 0); a later 1-GPU job must NOT
  // overtake it under strict FIFO.
  std::vector<JobRequest> jobs = {job(0, 0.0, 2), job(1, 1.0, 4),
                                  job(2, 2.0, 1)};
  const DriverReport report = run(Policy::kFcfs, jobs);
  const cluster::JobRecord* blocked = report.recorder.find(1);
  const cluster::JobRecord* late = report.recorder.find(2);
  ASSERT_TRUE(blocked->finished());
  ASSERT_TRUE(late->finished());
  EXPECT_GE(late->start, blocked->start);
}

TEST_F(DriverTest, TopoAwareAllowsOvertaking) {
  // Same workload under TOPO-AWARE: the 1-GPU job may start while the
  // 4-GPU job waits (Algorithm 1 keeps scanning the queue).
  std::vector<JobRequest> jobs = {job(0, 0.0, 2), job(1, 1.0, 4),
                                  job(2, 2.0, 1)};
  const DriverReport report = run(Policy::kTopoAware, jobs);
  const cluster::JobRecord* blocked = report.recorder.find(1);
  const cluster::JobRecord* late = report.recorder.find(2);
  ASSERT_TRUE(blocked->finished());
  ASSERT_TRUE(late->finished());
  EXPECT_LT(late->start, blocked->start);
}

TEST_F(DriverTest, ImpossibleJobRejectedNotDeadlocked) {
  std::vector<JobRequest> jobs = {job(0, 0.0, 1),
                                  job(1, 1.0, 8)};  // 8 > 4 GPUs
  const DriverReport report = run(Policy::kFcfs, jobs);
  EXPECT_EQ(report.rejected_jobs, 1);
  EXPECT_TRUE(report.recorder.find(0)->finished());
  EXPECT_FALSE(report.recorder.find(1)->placed());
}

TEST_F(DriverTest, SeriesRecordedWhenEnabled) {
  const auto scheduler = make_scheduler(Policy::kTopoAware);
  DriverOptions options;
  options.record_series = true;
  Driver driver(topo_, model_, *scheduler, options);
  const DriverReport report = driver.run({job(0, 0.0, 2)});
  EXPECT_GE(report.recorder.p2p_bandwidth().size(), 2u);
  EXPECT_GE(report.recorder.mean_utility().size(), 2u);
}

TEST_F(DriverTest, DeterministicAcrossRuns) {
  std::vector<JobRequest> jobs = {job(0, 0.0, 2), job(1, 3.0, 2),
                                  job(2, 5.0, 1), job(3, 6.0, 2)};
  const DriverReport a = run(Policy::kTopoAwareP, jobs);
  const DriverReport b = run(Policy::kTopoAwareP, jobs);
  ASSERT_EQ(a.recorder.records().size(), b.recorder.records().size());
  for (size_t i = 0; i < a.recorder.records().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.recorder.records()[i].end,
                     b.recorder.records()[i].end);
    EXPECT_EQ(a.recorder.records()[i].gpus, b.recorder.records()[i].gpus);
  }
}

// Property sweep: for random workloads under every policy, the recorded
// schedule must be physically consistent — no GPU hosts two jobs at
// overlapping times, jobs never start before arrival, every placed job's
// GPU count matches its request, and placements respect the single-node
// constraint.
struct ScheduleProperty {
  Policy policy;
  std::uint64_t seed;
};
class SchedulePropertyTest
    : public ::testing::TestWithParam<ScheduleProperty> {};

TEST_P(SchedulePropertyTest, NoOverlapNoTimeTravel) {
  const auto [policy, seed] = GetParam();
  const topo::TopologyGraph topology = topo::builders::cluster(
      2, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  trace::GeneratorOptions gen;
  gen.job_count = 40;
  gen.iterations = 200;
  gen.seed = seed;
  const auto jobs = trace::generate_workload(gen, model, topology);

  const auto scheduler = make_scheduler(policy);
  Driver driver(topology, model, *scheduler);
  const DriverReport report = driver.run(jobs);

  const auto& records = report.recorder.records();
  for (const auto& record : records) {
    if (!record.placed()) continue;
    EXPECT_GE(record.start, record.arrival - 1e-9);
    EXPECT_EQ(static_cast<int>(record.gpus.size()), record.num_gpus);
    if (record.finished()) {
      EXPECT_GE(record.end, record.start);
    }
    // single_node jobs stay on one machine.
    std::set<int> machines;
    for (const int gpu : record.gpus) {
      machines.insert(topology.machine_of_gpu(gpu));
    }
    EXPECT_EQ(machines.size(), 1u);
  }
  // Pairwise GPU-interval overlap check.
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      const auto& a = records[i];
      const auto& b = records[j];
      if (!a.placed() || !b.placed()) continue;
      const bool time_overlap =
          a.start < b.end - 1e-9 && b.start < a.end - 1e-9;
      if (!time_overlap) continue;
      for (const int gpu : a.gpus) {
        EXPECT_TRUE(std::find(b.gpus.begin(), b.gpus.end(), gpu) ==
                    b.gpus.end())
            << "GPU " << gpu << " double-booked by jobs " << a.id << " and "
            << b.id;
      }
    }
  }
}

std::vector<ScheduleProperty> schedule_sweep() {
  std::vector<ScheduleProperty> params;
  for (const Policy policy : {Policy::kFcfs, Policy::kBestFit,
                              Policy::kTopoAware, Policy::kTopoAwareP}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 21ULL}) {
      params.push_back({policy, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesRandomWorkloads, SchedulePropertyTest,
                         ::testing::ValuesIn(schedule_sweep()));

TEST_F(DriverTest, MakespanIsLastCompletion) {
  std::vector<JobRequest> jobs = {job(0, 0.0, 1, 1, 100),
                                  job(1, 0.0, 1, 1, 1000)};
  const DriverReport report = run(Policy::kTopoAware, jobs);
  double latest = 0.0;
  for (const auto& record : report.recorder.records()) {
    latest = std::max(latest, record.end);
  }
  EXPECT_DOUBLE_EQ(report.end_time, latest);
}

}  // namespace
}  // namespace gts::sched
