#include <gtest/gtest.h>

#include <vector>

#include "metrics/stats.hpp"
#include "sim/arrivals.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace gts::sim {
namespace {

TEST(EngineTest, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(EngineTest, TiesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(0); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EngineTest, HandlersCanScheduleMore) {
  Engine engine;
  std::vector<double> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(engine.now());
    if (fire_times.size() < 3) engine.schedule_in(1.5, chain);
  };
  engine.schedule_at(1.0, chain);
  engine.run();
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_DOUBLE_EQ(fire_times[0], 1.0);
  EXPECT_DOUBLE_EQ(fire_times[1], 2.5);
  EXPECT_DOUBLE_EQ(fire_times[2], 4.0);
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  const EventHandle handle = engine.schedule_at(1.0, [&] { fired = true; });
  engine.cancel(handle);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(engine.has_pending());
}

TEST(EngineTest, CancelIsIdempotentAndSafeAfterFire) {
  Engine engine;
  int fires = 0;
  const EventHandle handle = engine.schedule_at(1.0, [&] { ++fires; });
  engine.run();
  engine.cancel(handle);  // no-op
  engine.cancel(handle);
  EXPECT_EQ(fires, 1);
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine engine;
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    engine.schedule_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  engine.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  EXPECT_TRUE(engine.has_pending());
  engine.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EngineTest, RunWithLimit) {
  Engine engine;
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(static_cast<double>(i), [&] { ++fires; });
  }
  EXPECT_EQ(engine.run(4), 4u);
  EXPECT_EQ(fires, 4);
}

TEST(EngineTest, EventsFiredCounter) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  engine.run();
  EXPECT_EQ(engine.events_fired(), 2u);
}

TEST(EngineTest, CancelledEventsDoNotBlockRunUntil) {
  Engine engine;
  const EventHandle h1 = engine.schedule_at(1.0, [] {});
  engine.cancel(h1);
  engine.run_until(5.0);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(ArrivalsTest, CountAndMonotonicity) {
  util::Rng rng(7);
  const auto arrivals = poisson_arrivals(100, 10.0, rng);
  ASSERT_EQ(arrivals.size(), 100u);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
}

TEST(ArrivalsTest, RateMatchesLambda) {
  util::Rng rng(11);
  // lambda = 10 jobs/minute -> mean inter-arrival 6 s.
  const auto arrivals = poisson_arrivals(20000, 10.0, rng);
  std::vector<double> gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  EXPECT_NEAR(metrics::mean(gaps), 6.0, 0.15);
  // Exponential: stddev == mean.
  EXPECT_NEAR(metrics::stddev(gaps), 6.0, 0.2);
}

TEST(ArrivalsTest, StartTimeOffsets) {
  util::Rng rng(13);
  const auto arrivals = poisson_arrivals(10, 10.0, rng, 100.0);
  EXPECT_GT(arrivals.front(), 100.0);
}

}  // namespace
}  // namespace gts::sim
