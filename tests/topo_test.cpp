#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/topology.hpp"

namespace gts::topo {
namespace {

using builders::MachineShape;

TEST(Power8MinskyTest, Shape) {
  const TopologyGraph g = builders::power8_minsky();
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.gpu_count(), 4);
  EXPECT_EQ(g.machine_count(), 1);
  EXPECT_EQ(g.sockets_of_machine(0), 2);
  EXPECT_EQ(g.gpus_of_socket(0, 0), (std::vector<int>{0, 1}));
  EXPECT_EQ(g.gpus_of_socket(0, 1), (std::vector<int>{2, 3}));
}

TEST(Power8MinskyTest, SameSocketPairsAreP2PAtDistanceOne) {
  const TopologyGraph g = builders::power8_minsky();
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 1), 1.0);
  EXPECT_TRUE(g.gpu_path(0, 1).peer_to_peer);
  EXPECT_DOUBLE_EQ(g.gpu_path(0, 1).bottleneck_gbps, 40.0);
  EXPECT_DOUBLE_EQ(g.gpu_distance(2, 3), 1.0);
  EXPECT_TRUE(g.gpu_path(2, 3).peer_to_peer);
}

TEST(Power8MinskyTest, CrossSocketPairsRouteThroughHost) {
  const TopologyGraph g = builders::power8_minsky();
  // GPU0 -> S0 (1) -> M (20) -> S1 (20) -> GPU2 (1) = 42.
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 2), 42.0);
  EXPECT_FALSE(g.gpu_path(0, 2).peer_to_peer);
  // Bottleneck is the SMP bus.
  EXPECT_DOUBLE_EQ(g.gpu_path(0, 2).bottleneck_gbps, 32.0);
}

TEST(Power8MinskyTest, DistancesSymmetric) {
  const TopologyGraph g = builders::power8_minsky();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(g.gpu_distance(i, j), g.gpu_distance(j, i));
    }
  }
}

TEST(Power8MinskyTest, MaxGpuDistanceIsCrossSocket) {
  const TopologyGraph g = builders::power8_minsky();
  EXPECT_DOUBLE_EQ(g.max_gpu_distance(), 42.0);
}

TEST(Power8PcieTest, NoPeerToPeerAnywhere) {
  const TopologyGraph g = builders::power8_pcie();
  EXPECT_TRUE(g.validate().is_ok());
  for (int i = 0; i < g.gpu_count(); ++i) {
    for (int j = 0; j < g.gpu_count(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(g.gpu_path(i, j).peer_to_peer)
          << "pair " << i << "," << j;
    }
  }
  // Same-socket PCI-e pair: GPU -> socket -> GPU, distance 2, bottleneck 16.
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.gpu_path(0, 1).bottleneck_gbps, 16.0);
}

TEST(Dgx1Test, Shape) {
  const TopologyGraph g = builders::dgx1();
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.gpu_count(), 8);
  EXPECT_EQ(g.sockets_of_machine(0), 2);
  // Quads on sockets.
  for (int gpu = 0; gpu < 4; ++gpu) EXPECT_EQ(g.socket_of_gpu(gpu), 0);
  for (int gpu = 4; gpu < 8; ++gpu) EXPECT_EQ(g.socket_of_gpu(gpu), 1);
}

TEST(Dgx1Test, HybridCubeMeshNvlinkDegree) {
  const TopologyGraph g = builders::dgx1();
  // Each GPU has exactly 4 NVLink edges (P100).
  std::vector<int> degree(8, 0);
  for (const Link& link : g.links()) {
    if (link.kind != LinkKind::kNvlink) continue;
    ++degree[static_cast<size_t>(g.node(link.a).gpu_index)];
    ++degree[static_cast<size_t>(g.node(link.b).gpu_index)];
  }
  for (int gpu = 0; gpu < 8; ++gpu) EXPECT_EQ(degree[static_cast<size_t>(gpu)], 4);
}

TEST(Dgx1Test, IntraQuadIsDirectNvlink) {
  const TopologyGraph g = builders::dgx1();
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(g.gpu_distance(i, j), 1.0);
      EXPECT_TRUE(g.gpu_path(i, j).peer_to_peer);
    }
  }
}

TEST(Dgx1Test, CrossQuadNonNeighborRoutesViaHost) {
  const TopologyGraph g = builders::dgx1();
  // GPU0 and GPU5 are not directly linked and GPUs cannot forward
  // traffic, so the route goes over the PCI-e switches and the SMP bus
  // (Section 1's GPU1->GPU5 example):
  // 0 -> sw (1) -> S0 (10) -> M (20) -> S1 (20) -> sw (10) -> 5 (1) = 62.
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 5), 62.0);
  EXPECT_FALSE(g.gpu_path(0, 5).peer_to_peer);
  EXPECT_DOUBLE_EQ(g.gpu_path(0, 5).bottleneck_gbps, 16.0);
  // Direct cross link stays NVLink.
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 4), 1.0);
  EXPECT_TRUE(g.gpu_path(0, 4).peer_to_peer);
}

TEST(ClusterBuilderTest, MultiMachineShape) {
  const TopologyGraph g =
      builders::cluster(3, MachineShape::kPower8Minsky);
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.gpu_count(), 12);
  EXPECT_EQ(g.machine_count(), 3);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(g.gpus_of_machine(m).size(), 4u);
  }
  // Machine-major global indexing.
  EXPECT_EQ(g.machine_of_gpu(0), 0);
  EXPECT_EQ(g.machine_of_gpu(4), 1);
  EXPECT_EQ(g.machine_of_gpu(11), 2);
}

TEST(ClusterBuilderTest, CrossMachineDistanceDominates) {
  const TopologyGraph g =
      builders::cluster(2, MachineShape::kPower8Minsky);
  // Within machine: 1 (same socket) / 42 (cross socket).
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 1), 1.0);
  // Across machines: 1 + 20 + 100 + 100 + 20 + 1 = 242.
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 4), 242.0);
  EXPECT_FALSE(g.gpu_path(0, 4).peer_to_peer);
  // Network bottleneck.
  EXPECT_DOUBLE_EQ(g.gpu_path(0, 4).bottleneck_gbps, 12.5);
}

TEST(ClusterBuilderTest, SingleMachineClusterHasNoNetworkNode) {
  const TopologyGraph g =
      builders::cluster(1, MachineShape::kPower8Minsky);
  for (const Node& node : g.nodes()) {
    EXPECT_NE(node.kind, NodeKind::kNetwork);
  }
}

TEST(ClusterBuilderTest, GpusPerMachine) {
  EXPECT_EQ(builders::gpus_per_machine(MachineShape::kPower8Minsky), 4);
  EXPECT_EQ(builders::gpus_per_machine(MachineShape::kPower8Pcie), 4);
  EXPECT_EQ(builders::gpus_per_machine(MachineShape::kDgx1), 8);
}

TEST(ValidateTest, RejectsBadGraphs) {
  TopologyGraph empty;
  EXPECT_FALSE(empty.validate().is_ok());

  TopologyGraph disconnected;
  disconnected.add_node({NodeKind::kMachine, "M0", 0, -1, -1, -1});
  disconnected.add_node({NodeKind::kMachine, "M1", 1, -1, -1, -1});
  EXPECT_FALSE(disconnected.validate().is_ok());

  TopologyGraph bad_weight;
  const NodeId a = bad_weight.add_node({NodeKind::kMachine, "M0", 0, -1, -1, -1});
  const NodeId b = bad_weight.add_node({NodeKind::kSocket, "S0", 0, 0, -1, -1});
  bad_weight.add_link({a, b, LinkKind::kSmpBus, -1.0, 32.0, 1});
  EXPECT_FALSE(bad_weight.validate().is_ok());
}

TEST(ShortestPathTest, MatchesBruteForceOnMinsky) {
  const TopologyGraph g = builders::power8_minsky();
  // Spot-check the arbitrary-node API against known structure: socket to
  // opposite GPU = 20 + 20 + 1.
  NodeId socket0 = kInvalidNode;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    if (g.node(id).kind == NodeKind::kSocket && g.node(id).socket == 0) {
      socket0 = id;
      break;
    }
  }
  ASSERT_NE(socket0, kInvalidNode);
  const GpuPath path = g.shortest_path(socket0, g.gpu_node(3));
  EXPECT_DOUBLE_EQ(path.distance, 41.0);
  EXPECT_EQ(path.links.size(), 3u);
}

TEST(HierarchicalPathCacheTest, MatchesDirectDijkstraAtScale) {
  // Above 64 GPUs the graph switches to the hierarchical cache
  // (per-machine tables + root routes); distances and paths must be
  // identical to a direct shortest-path computation.
  const TopologyGraph g =
      builders::cluster(20, MachineShape::kPower8Minsky);  // 80 GPUs
  ASSERT_GT(g.gpu_count(), 64);
  // Spot-check a deterministic sample of pairs, intra- and cross-machine.
  for (int a = 0; a < g.gpu_count(); a += 7) {
    for (int b = 1; b < g.gpu_count(); b += 13) {
      if (a == b) continue;
      const GpuPath direct = g.shortest_path(g.gpu_node(a), g.gpu_node(b));
      EXPECT_DOUBLE_EQ(g.gpu_distance(a, b), direct.distance)
          << "pair " << a << "," << b;
      const GpuPath& cached = g.gpu_path(a, b);
      EXPECT_DOUBLE_EQ(cached.distance, direct.distance);
      EXPECT_DOUBLE_EQ(cached.bottleneck_gbps, direct.bottleneck_gbps);
      EXPECT_EQ(cached.peer_to_peer, direct.peer_to_peer);
      EXPECT_EQ(cached.links.size(), direct.links.size());
    }
  }
  // Diameter equals the brute-force maximum over the sample structure:
  // cross-machine worst case is 242 on this homogeneous cluster.
  EXPECT_DOUBLE_EQ(g.max_gpu_distance(), 242.0);
}

TEST(HierarchicalPathCacheTest, CrossMachinePathsTraverseTheRoot) {
  const TopologyGraph g =
      builders::cluster(20, MachineShape::kPower8Minsky);
  const GpuPath& path = g.gpu_path(0, 79);
  EXPECT_FALSE(path.peer_to_peer);
  bool crosses_network = false;
  for (const LinkId link : path.links) {
    if (g.link(link).kind == LinkKind::kNetwork) crosses_network = true;
  }
  EXPECT_TRUE(crosses_network);
  EXPECT_DOUBLE_EQ(path.bottleneck_gbps, 12.5);
}

TEST(DescribeTest, MentionsKeyFacts) {
  const TopologyGraph g = builders::power8_minsky();
  const std::string text = g.describe();
  EXPECT_NE(text.find("4 GPUs"), std::string::npos);
  EXPECT_NE(text.find("nvlink"), std::string::npos);
  EXPECT_NE(text.find("GPU distance matrix"), std::string::npos);
}

TEST(CustomWeightsTest, Propagate) {
  builders::MachineShapeOptions options;
  options.weights.gpu_adjacent = 2.0;
  options.bandwidth.nvlink_lane_gbps = 25.0;
  const TopologyGraph g = builders::power8_minsky(options);
  EXPECT_DOUBLE_EQ(g.gpu_distance(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.gpu_path(0, 1).bottleneck_gbps, 50.0);
}

}  // namespace
}  // namespace gts::topo
