#include <gtest/gtest.h>

#include <cstdio>
#include <cmath>
#include <fstream>

#include "json/json.hpp"

namespace gts::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5")->as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2")->as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  const auto doc = parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->is_object());
  const Value& a = doc->at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.as_array().size(), 3u);
  EXPECT_EQ(a.as_array()[2].at("b").as_bool(), true);
  EXPECT_TRUE(doc->at("c").at("d").is_null());
}

TEST(JsonParseTest, StringEscapes) {
  const auto doc = parse(R"("line\nbreak\t\"quote\" \\ \/ A")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "line\nbreak\t\"quote\" \\ / A");
}

TEST(JsonParseTest, UnicodeEscapeMultibyte) {
  const auto doc = parse(R"("é€")");  // é, €
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const auto doc = parse("  {\n\t\"a\" :\r 1 }  ");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("a").as_int(), 1);
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(parse("{}")->as_object().empty());
  EXPECT_TRUE(parse("[]")->as_array().empty());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("{").has_value());
  EXPECT_FALSE(parse("[1,]").has_value());
  EXPECT_FALSE(parse("{\"a\":}").has_value());
  EXPECT_FALSE(parse("{'a':1}").has_value());
  EXPECT_FALSE(parse("tru").has_value());
  EXPECT_FALSE(parse("1 2").has_value());
  EXPECT_FALSE(parse("\"unterminated").has_value());
  EXPECT_FALSE(parse("01abc").has_value());
  EXPECT_FALSE(parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse("[1 2]").has_value());
  EXPECT_FALSE(parse("1.").has_value());
  EXPECT_FALSE(parse("1e").has_value());
  EXPECT_FALSE(parse("\"bad\\q\"").has_value());
  EXPECT_FALSE(parse("\"bad\\u12g4\"").has_value());
}

TEST(JsonParseTest, ErrorCarriesLineInfo) {
  const auto doc = parse("{\n  \"a\": oops\n}");
  ASSERT_FALSE(doc.has_value());
  EXPECT_NE(doc.error().message.find("line 2"), std::string::npos);
}

TEST(JsonWriteTest, CompactRoundTrip) {
  const auto original =
      parse(R"({"s":"x","n":1.5,"b":true,"z":null,"a":[1,2],"o":{"k":2}})");
  ASSERT_TRUE(original.has_value());
  const std::string text = write(*original);
  const auto reparsed = parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*original == *reparsed);
}

TEST(JsonWriteTest, PrettyRoundTrip) {
  const auto original = parse(R"({"a":[1,{"b":[]}],"c":"d"})");
  ASSERT_TRUE(original.has_value());
  const std::string text = write(*original, {.indent = 2});
  EXPECT_NE(text.find('\n'), std::string::npos);
  const auto reparsed = parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*original == *reparsed);
}

TEST(JsonWriteTest, EscapesControlCharacters) {
  const std::string raw = std::string("a\nb") + '\x01' + "c";
  const std::string text = write(Value(raw));
  EXPECT_EQ(text, "\"a\\nb\\u0001c\"");
  const auto reparsed = parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), raw);
}

TEST(JsonWriteTest, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(write(Value(42)), "42");
  EXPECT_EQ(write(Value(-5)), "-5");
  EXPECT_EQ(write(Value(2.5)), "2.5");
}

TEST(JsonWriteTest, NonFiniteBecomesNull) {
  EXPECT_EQ(write(Value(std::nan(""))), "null");
}

TEST(JsonValueTest, AccessorsOnWrongTypes) {
  const Value v(5);
  EXPECT_EQ(v.as_string(), "");
  EXPECT_TRUE(v.as_array().empty());
  EXPECT_TRUE(v.as_object().empty());
  EXPECT_TRUE(v.at("missing").is_null());
  EXPECT_FALSE(v.contains("x"));
}

TEST(JsonValueTest, SetConvertsToObject) {
  Value v;
  v.set("a", 1);
  v.set("b", "x");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").as_string(), "x");
}

TEST(JsonFileTest, RoundTripThroughDisk) {
  Value v;
  v.set("answer", 42);
  const std::string path = "/tmp/gts_json_test.json";
  ASSERT_TRUE(write_file(v, path).is_ok());
  const auto loaded = parse_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->at("answer").as_int(), 42);
  std::remove(path.c_str());
}

TEST(JsonFileTest, MissingFileFails) {
  EXPECT_FALSE(parse_file("/nonexistent/gts.json").has_value());
}

// --- wire-duty hardening (the svc protocol parses untrusted bytes) ---------

TEST(JsonHardeningTest, RejectsSurrogateEscapes) {
  // Lone high surrogate, lone low surrogate, and a well-formed non-BMP
  // pair (U+1D11E): all outside the BMP-only contract, all rejected.
  for (const char* text :
       {R"("\ud834")", R"("\udd1e")", R"("\ud834\udd1e")",
        R"({"k": "\uDFFF trailing"})"}) {
    const auto doc = parse(text);
    ASSERT_FALSE(doc.has_value()) << text;
    EXPECT_NE(doc.error().message.find("surrogate"), std::string::npos)
        << doc.error().message;
  }
  // Boundary code points adjacent to the surrogate range still parse.
  EXPECT_EQ(parse(R"("\ud7ff")")->as_string(), "\xed\x9f\xbf");
  EXPECT_EQ(parse(R"("\ue000")")->as_string(), "\xee\x80\x80");
}

TEST(JsonHardeningTest, RejectsTruncatedUnicodeEscape) {
  EXPECT_FALSE(parse(R"("\u12)").has_value());
  EXPECT_FALSE(parse(R"("\u12zz")").has_value());
  EXPECT_FALSE(parse("\"\\u").has_value());
}

TEST(JsonHardeningTest, RejectsOverDeepNesting) {
  const std::string deep_array(static_cast<size_t>(kMaxParseDepth) + 8, '[');
  const auto arrays = parse(deep_array);
  ASSERT_FALSE(arrays.has_value());
  EXPECT_NE(arrays.error().message.find("nesting"), std::string::npos);

  std::string deep_object;
  for (int i = 0; i < kMaxParseDepth + 8; ++i) deep_object += "{\"a\":";
  EXPECT_FALSE(parse(deep_object).has_value());
}

TEST(JsonHardeningTest, AcceptsNestingAtTheLimit) {
  std::string text;
  const int depth = kMaxParseDepth;
  for (int i = 0; i < depth; ++i) text += '[';
  text += "1";
  for (int i = 0; i < depth; ++i) text += ']';
  const auto doc = parse(text);
  ASSERT_TRUE(doc.has_value());

  // Sibling containers do not accumulate depth: a long flat array of
  // empty objects is fine.
  std::string flat = "[";
  for (int i = 0; i < 4 * kMaxParseDepth; ++i) {
    if (i > 0) flat += ',';
    flat += "{}";
  }
  flat += ']';
  EXPECT_TRUE(parse(flat).has_value());
}

TEST(JsonHardeningTest, AdversarialInputsFailCleanly) {
  // None of these may crash or return success; several used to be
  // quietly mis-parsed in pre-hardening revisions of other libraries.
  for (const char* text :
       {"[1, 2", "{\"a\" 1}", "{\"a\":}", "[,]", "nul", "tru", "+1", "01a",
        "\"\x01\"", "1e", "1e+", "-", "--1", "\"abc", "[\"\\q\"]",
        "{\"a\": 1,}", "[]]", "{} {}", "\x80\x80"}) {
    EXPECT_FALSE(parse(text).has_value()) << text;
  }
}

TEST(JsonHardeningTest, RoundTripSurvivesControlAndQuoteHeavyStrings) {
  Value v;
  v.set("s", std::string("a\"b\\c\n\t\r\b\f\x01\x1f end"));
  v.set("empty", std::string());
  Array nested;
  for (int i = 0; i < 50; ++i) {
    Value inner;
    inner.set("i", i);
    inner.set("text", std::string(static_cast<size_t>(i), '"'));
    nested.push_back(std::move(inner));
  }
  v.set("nested", std::move(nested));
  const auto reparsed = parse(write(v));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*reparsed == v);
  const auto pretty = parse(write(v, {.indent = 2}));
  ASSERT_TRUE(pretty.has_value());
  EXPECT_TRUE(*pretty == v);
}

}  // namespace
}  // namespace gts::json
