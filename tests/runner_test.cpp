// The experiment runner: seed-spec parsing, sweep fan-out, aggregation,
// the BENCH JSON document, and — the contract everything else leans on —
// thread-count independence: the same sweep run with --threads 1 and
// --threads 8 must produce byte-identical per-replica payloads and
// aggregates (only the "run" / "timing" sections may differ).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "json/json.hpp"
#include "runner/experiments.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace gts::runner {
namespace {

// ------------------------------------------------------------ seed spec ----

TEST(SeedSpecTest, CountExpandsToRange) {
  const auto seeds = parse_seed_spec("4");
  ASSERT_TRUE(seeds);
  EXPECT_EQ(*seeds, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(SeedSpecTest, TrailingCommaMeansExplicitList) {
  const auto seeds = parse_seed_spec("42,");
  ASSERT_TRUE(seeds);
  EXPECT_EQ(*seeds, (std::vector<std::uint64_t>{42}));
}

TEST(SeedSpecTest, ExplicitList) {
  const auto seeds = parse_seed_spec("3,5,9");
  ASSERT_TRUE(seeds);
  EXPECT_EQ(*seeds, (std::vector<std::uint64_t>{3, 5, 9}));
}

TEST(SeedSpecTest, RejectsGarbage) {
  EXPECT_FALSE(parse_seed_spec(""));
  EXPECT_FALSE(parse_seed_spec("0"));
  EXPECT_FALSE(parse_seed_spec("abc"));
  EXPECT_FALSE(parse_seed_spec("1,x,3"));
  EXPECT_FALSE(parse_seed_spec(","));
}

// ----------------------------------------------------------- thread pool ---

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    for (int i = 1; i <= 100; ++i) {
      pool.submit([&sum, i] { sum += i; });
    }
    pool.wait_idle();
    EXPECT_EQ(sum.load(), 5050);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool pool(8);
  parallel_for(pool, 64, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ----------------------------------------------------------------- sweep ---

json::Value simple_payload(const ReplicaContext& context) {
  // Deterministic function of (scenario, seed) plus three rng draws; any
  // cross-replica interference or mis-derived stream shows up as a diff.
  util::Rng rng = context.rng;
  json::Object nested;
  nested["draw"] = rng.uniform();
  json::Object payload;
  payload["seed_times_ten"] = static_cast<double>(context.seed) * 10.0;
  payload["scenario_index"] = context.scenario_index;
  payload["events"] = 100.0;
  payload["nested"] = std::move(nested);
  return payload;
}

TEST(SweepTest, SlotsAreScenarioMajorSeedMinor) {
  SweepOptions options;
  options.name = "order";
  options.scenarios = {"a", "b"};
  options.seeds = {7, 9};
  options.threads = 2;
  const SweepResult result = run_sweep(options, simple_payload);
  ASSERT_EQ(result.replicas.size(), 4u);
  EXPECT_EQ(result.replicas[0].scenario_index, 0);
  EXPECT_EQ(result.replicas[0].seed, 7u);
  EXPECT_EQ(result.replicas[1].seed, 9u);
  EXPECT_EQ(result.replicas[2].scenario_index, 1);
  EXPECT_EQ(result.replica(1, 9).payload.at("scenario_index").as_int(), 1);
  EXPECT_DOUBLE_EQ(result.total_events, 400.0);
}

TEST(SweepTest, AggregatesSummarizeAcrossSeeds) {
  SweepOptions options;
  options.name = "agg";
  options.seeds = {1, 2, 3};
  const SweepResult result = run_sweep(options, simple_payload);
  const metrics::Summary s =
      find_aggregate(result, "default", "seed_times_ten");
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  // Nested objects aggregate under dotted paths.
  EXPECT_EQ(find_aggregate(result, "default", "nested.draw").count, 3);
}

TEST(SweepTest, ReplicaExceptionIsRethrown) {
  SweepOptions options;
  options.name = "boom";
  options.seeds = {1, 2};
  options.threads = 2;
  EXPECT_THROW(
      run_sweep(options,
                [](const ReplicaContext& context) -> json::Value {
                  if (context.seed == 2) throw std::runtime_error("replica 2");
                  return json::Object{};
                }),
      std::runtime_error);
}

// The determinism regression the runner exists for: identical documents
// (outside the wall-clock sections) regardless of worker count.
TEST(SweepTest, ThreadCountDoesNotChangeResults) {
  const auto sweep_with = [](int threads) {
    SweepOptions options;
    options.name = "det";
    options.scenarios = {"s0", "s1", "s2"};
    options.seeds = {1, 2, 3, 4};
    options.threads = threads;
    return run_sweep(options, [](const ReplicaContext& context) {
      util::Rng rng = context.rng;
      // Burn a variable amount of work so threads finish out of order.
      double acc = 0.0;
      const int spins =
          1000 * (1 + (context.replica_index % 5));
      for (int i = 0; i < spins; ++i) acc += rng.uniform();
      json::Object timing;
      timing["acc_nondet_ok"] = acc / static_cast<double>(spins);
      json::Object payload;
      payload["draw"] = rng.uniform();
      payload["events"] = static_cast<double>(spins);
      payload["timing"] = std::move(timing);
      return json::Value(payload);
    });
  };
  const SweepResult one = sweep_with(1);
  const SweepResult eight = sweep_with(8);

  ASSERT_EQ(one.replicas.size(), eight.replicas.size());
  for (size_t i = 0; i < one.replicas.size(); ++i) {
    EXPECT_EQ(json::write(strip_timing(one.replicas[i].payload)),
              json::write(strip_timing(eight.replicas[i].payload)))
        << "replica " << i;
  }
  // The full deterministic view (metadata, replicas, aggregates) matches
  // byte for byte once the declared-nondeterministic sections are dropped.
  json::Value doc1 = one.to_json(/*include_timing=*/false);
  json::Value doc8 = eight.to_json(/*include_timing=*/false);
  doc1.set("threads", 0);
  doc8.set("threads", 0);
  EXPECT_EQ(json::write(doc1), json::write(doc8));
}

TEST(SweepTest, StripTimingRemovesReservedSubtrees) {
  json::Object timing;
  timing["wall"] = 1.0;
  json::Object inner;
  inner["kept"] = 2.0;
  inner["timing"] = timing;
  json::Object payload;
  payload["inner"] = std::move(inner);
  payload["timing"] = std::move(timing);
  payload["metric"] = 3.0;
  const json::Value stripped = strip_timing(payload);
  EXPECT_FALSE(stripped.contains("timing"));
  EXPECT_FALSE(stripped.at("inner").contains("timing"));
  EXPECT_DOUBLE_EQ(stripped.at("inner").at("kept").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(stripped.at("metric").as_number(), 3.0);
}

TEST(SweepTest, TimingMetricsStayOutOfDeterministicAggregates) {
  SweepOptions options;
  options.name = "timing";
  options.seeds = {1, 2};
  const SweepResult result =
      run_sweep(options, [](const ReplicaContext& context) {
        json::Object timing;
        timing["wall_us"] = static_cast<double>(context.seed) * 3.0;
        json::Object payload;
        payload["metric"] = static_cast<double>(context.seed);
        payload["timing"] = std::move(timing);
        return json::Value(payload);
      });
  bool saw_timing_aggregate = false;
  for (const MetricAggregate& aggregate : result.aggregates) {
    if (aggregate.metric == "timing.wall_us") {
      saw_timing_aggregate = true;
      EXPECT_TRUE(aggregate.timing);
    } else {
      EXPECT_FALSE(aggregate.timing) << aggregate.metric;
    }
  }
  EXPECT_TRUE(saw_timing_aggregate);

  const json::Value doc = result.to_json(/*include_timing=*/true);
  EXPECT_TRUE(doc.at("timing_aggregates")
                  .at("default")
                  .contains("timing.wall_us"));
  EXPECT_FALSE(doc.at("aggregates").at("default").contains("timing.wall_us"));
  // With timing excluded, neither the block nor the subtree survives.
  const json::Value bare = result.to_json(/*include_timing=*/false);
  EXPECT_FALSE(bare.contains("timing_aggregates"));
  EXPECT_FALSE(bare.contains("run"));
  EXPECT_FALSE(
      bare.at("replicas").as_array().front().at("payload").contains("timing"));
}

// ------------------------------------------------------- BENCH documents ---

TEST(BenchJsonTest, ValidatorAcceptsRunnerOutputAndRejectsDamage) {
  SweepOptions options;
  options.name = "val";
  options.scenarios = {"a"};
  options.seeds = {1, 2};
  const SweepResult result = run_sweep(options, simple_payload);
  json::Value doc = result.to_json();
  EXPECT_TRUE(validate_bench_json(doc).is_ok());

  json::Value no_version = doc;
  no_version.mutable_object().erase("schema_version");
  EXPECT_FALSE(validate_bench_json(no_version).is_ok());

  json::Value wrong_count = doc;
  wrong_count.at("replicas");  // keep shape; drop one replica below
  wrong_count.mutable_object()["replicas"].mutable_array().pop_back();
  EXPECT_FALSE(validate_bench_json(wrong_count).is_ok());

  EXPECT_FALSE(validate_bench_json(json::Value(json::Array{})).is_ok());
}

// The ctest-side consumer of the acceptance artifacts: a (tiny) Fig. 10 /
// Fig. 11 sweep written via write_bench_json must round-trip through the
// parser with schema version, metadata and aggregates intact.
TEST(BenchJsonTest, LargeScaleBenchDocumentRoundTrips) {
  for (const char* name : {"fig10", "fig11"}) {
    LargeScaleSweepConfig config;
    config.name = name;
    config.machines = 2;
    config.jobs = 8;
    config.iterations = 50;
    config.seeds = {1, 2};
    config.threads = 2;
    config.include_curves = false;
    const SweepResult result = run_large_scale_sweep(config);

    const std::string path =
        testing::TempDir() + "/BENCH_" + name + ".json";
    ASSERT_TRUE(write_bench_json(result, path).is_ok());

    const auto parsed = json::parse_file(path);
    ASSERT_TRUE(parsed) << parsed.error().message;
    ASSERT_TRUE(validate_bench_json(*parsed).is_ok());
    EXPECT_EQ(parsed->at("schema_version").as_int(), kBenchSchemaVersion);
    EXPECT_EQ(parsed->at("name").as_string(), name);
    EXPECT_EQ(parsed->at("metadata").at("machines").as_int(), 2);
    EXPECT_EQ(parsed->at("metadata").at("jobs").as_int(), 8);
    EXPECT_EQ(parsed->at("metadata").at("policies").as_array().size(), 4u);
    EXPECT_EQ(parsed->at("seeds").as_array().size(), 2u);
    EXPECT_GT(parsed->at("run").at("events").as_number(), 0.0);

    // Every policy's QoS mean was aggregated over both seeds.
    const std::string scenario =
        parsed->at("scenarios").as_array().front().as_string();
    for (const char* policy : {"BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"}) {
      const json::Value& summary =
          parsed->at("aggregates")
              .at(scenario)
              .at(std::string("policies.") + policy + ".qos_mean");
      EXPECT_EQ(summary.at("count").as_int(), 2) << policy;
      EXPECT_GT(summary.at("mean").as_number(), 0.0) << policy;
    }
    // Decision timing lives in the nondeterministic block, not the
    // deterministic aggregates.
    EXPECT_TRUE(parsed->at("timing_aggregates")
                    .at(scenario)
                    .contains("policies.BF.timing.mean_decision_us"));
  }
}

// Replica payloads of a real experiment are thread-count independent once
// timing subtrees are stripped (the regression behind BENCH reproducibility).
TEST(BenchJsonTest, LargeScaleSweepIsThreadCountIndependent) {
  const auto sweep_with = [](int threads) {
    LargeScaleSweepConfig config;
    config.name = "det";
    config.machines = 2;
    config.jobs = 10;
    config.iterations = 50;
    config.seeds = {1, 2, 3};
    config.threads = threads;
    config.include_curves = true;
    return run_large_scale_sweep(config);
  };
  const SweepResult one = sweep_with(1);
  const SweepResult eight = sweep_with(8);
  ASSERT_EQ(one.replicas.size(), eight.replicas.size());
  for (size_t i = 0; i < one.replicas.size(); ++i) {
    EXPECT_EQ(json::write(strip_timing(one.replicas[i].payload)),
              json::write(strip_timing(eight.replicas[i].payload)))
        << "replica " << i;
  }
}

}  // namespace
}  // namespace gts::runner
