#include <gtest/gtest.h>

#include "k8s/shim.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"

namespace gts::k8s {
namespace {

using jobgraph::NeuralNet;
using topo::builders::MachineShape;

class K8sShimTest : public ::testing::Test {
 protected:
  topo::TopologyGraph cluster_ =
      topo::builders::cluster(3, MachineShape::kPower8Minsky);
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  cluster::ClusterState state_{cluster_, model_};
  KubeTopologyScheduler shim_{cluster_, model_};

  GpuPodSpec pod(int gpus, const std::string& batch = "1",
                 const std::string& min_utility = "0.5") {
    GpuPodSpec spec;
    spec.name = "trainer";
    spec.gpu_request = gpus;
    spec.annotations["gts.io/nn"] = "AlexNet";
    spec.annotations["gts.io/batch-size"] = batch;
    spec.annotations["gts.io/min-utility"] = min_utility;
    return spec;
  }
};

TEST_F(K8sShimTest, PodTranslatesToProfiledJob) {
  const auto job = shim_.pod_to_job(pod(2, "4"), 1);
  ASSERT_TRUE(job.has_value()) << job.error().message;
  EXPECT_EQ(job->num_gpus, 2);
  EXPECT_EQ(job->profile.nn, NeuralNet::kAlexNet);
  EXPECT_EQ(job->profile.batch_size, 4);
  EXPECT_DOUBLE_EQ(job->min_utility, 0.5);
  EXPECT_TRUE(job->profile.single_node);
  EXPECT_GT(job->profile.solo_time_pack, 0.0);
  EXPECT_GT(job->profile.host_bw_demand_gbps, 0.0);
}

TEST_F(K8sShimTest, AnnotationFlagsApply) {
  GpuPodSpec spec = pod(2);
  spec.annotations["gts.io/multi-node"] = "true";
  spec.annotations["gts.io/anti-affinity"] = "true";
  const auto job = shim_.pod_to_job(spec, 1);
  ASSERT_TRUE(job.has_value());
  EXPECT_FALSE(job->profile.single_node);
  EXPECT_TRUE(job->profile.anti_collocate);
}

TEST_F(K8sShimTest, MalformedAnnotationsRejected) {
  GpuPodSpec bad_nn = pod(1);
  bad_nn.annotations["gts.io/nn"] = "transformer";
  EXPECT_FALSE(shim_.pod_to_job(bad_nn, 1).has_value());

  GpuPodSpec bad_batch = pod(1);
  bad_batch.annotations["gts.io/batch-size"] = "-3";
  EXPECT_FALSE(shim_.pod_to_job(bad_batch, 1).has_value());

  GpuPodSpec bad_utility = pod(1);
  bad_utility.annotations["gts.io/min-utility"] = "1.5";
  EXPECT_FALSE(shim_.pod_to_job(bad_utility, 1).has_value());

  GpuPodSpec no_gpus = pod(0);
  EXPECT_FALSE(shim_.pod_to_job(no_gpus, 1).has_value());
}

TEST_F(K8sShimTest, FilterChecksCapacity) {
  const auto job = shim_.pod_to_job(pod(2), 1);
  ASSERT_TRUE(job.has_value());
  EXPECT_TRUE(shim_.filter(*job, state_, 0));
  EXPECT_FALSE(shim_.filter(*job, state_, 99));  // no such node

  // Fill node 0's GPUs: Filter must fail there, pass elsewhere.
  state_.place(perf::make_profiled_dl(9, 0.0, NeuralNet::kGoogLeNet, 64, 4,
                                      0.0, model_, cluster_, 700),
               {0, 1, 2, 3}, 0.0);
  EXPECT_FALSE(shim_.filter(*job, state_, 0));
  EXPECT_TRUE(shim_.filter(*job, state_, 1));
}

TEST_F(K8sShimTest, ScoreRanksPackableNodesHigher) {
  const auto job = shim_.pod_to_job(pod(2, "1"), 1);
  ASSERT_TRUE(job.has_value());
  // Node 1: one GPU busy per socket -> only a cross-socket pair remains.
  state_.place(perf::make_profiled_dl(8, 0.0, NeuralNet::kGoogLeNet, 64, 1,
                                      0.0, model_, cluster_, 700),
               {4}, 0.0);
  state_.place(perf::make_profiled_dl(9, 0.0, NeuralNet::kGoogLeNet, 64, 1,
                                      0.0, model_, cluster_, 700),
               {6}, 0.0);
  const int fragmented = shim_.score(*job, state_, 1);
  const int empty = shim_.score(*job, state_, 2);
  EXPECT_GT(empty, fragmented);
  EXPECT_GE(fragmented, 0);
  EXPECT_LE(empty, 100);
}

TEST_F(K8sShimTest, BindReturnsDeviceAllocationAndEnv) {
  const auto job = shim_.pod_to_job(pod(2, "1"), 1);
  ASSERT_TRUE(job.has_value());
  const auto binding = shim_.bind(*job, state_);
  ASSERT_TRUE(binding.has_value());
  EXPECT_GE(binding->node, 0);
  ASSERT_EQ(binding->device_ids.size(), 2u);
  // Same socket on the chosen node -> local device ids are a socket pair.
  EXPECT_TRUE(cluster_.same_socket(binding->global_gpu_ids[0],
                                   binding->global_gpu_ids[1]));
  bool has_visible_devices = false;
  for (const auto& env : binding->environment) {
    if (env.rfind("CUDA_VISIBLE_DEVICES=", 0) == 0) has_visible_devices = true;
  }
  EXPECT_TRUE(has_visible_devices);
  EXPECT_GE(binding->score, 50.0);
}

TEST_F(K8sShimTest, BindLeavesPodPendingBelowSlo) {
  // Leave only cross-socket pairs everywhere: binding a min-utility-0.5
  // pod must fail (Pending), while a 0.0-threshold pod binds.
  for (int machine = 0; machine < 3; ++machine) {
    const auto gpus = cluster_.gpus_of_machine(machine);
    state_.place(perf::make_profiled_dl(10 + machine * 2, 0.0,
                                        NeuralNet::kGoogLeNet, 64, 1, 0.0,
                                        model_, cluster_, 700),
                 {gpus[1]}, 0.0);
    state_.place(perf::make_profiled_dl(11 + machine * 2, 0.0,
                                        NeuralNet::kGoogLeNet, 64, 1, 0.0,
                                        model_, cluster_, 700),
                 {gpus[3]}, 0.0);
  }
  const auto strict = shim_.pod_to_job(pod(2, "1", "0.5"), 1);
  ASSERT_TRUE(strict.has_value());
  EXPECT_FALSE(shim_.bind(*strict, state_).has_value());

  const auto lax = shim_.pod_to_job(pod(2, "1", "0.0"), 2);
  ASSERT_TRUE(lax.has_value());
  EXPECT_TRUE(shim_.bind(*lax, state_).has_value());
}

}  // namespace
}  // namespace gts::k8s
