#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/ini.hpp"
#include "config/system_config.hpp"

namespace gts::config {
namespace {

// ---------------------------------------------------------------- INI -----

TEST(IniTest, ParsesSectionsAndKeys) {
  const auto ini = Ini::parse(
      "# comment\n"
      "top = level\n"
      "[system]\n"
      "simulation = True\n"
      "machines = 5\n"
      "; another comment\n"
      "[workload]\n"
      "arrival_rate_per_minute = 10.0\n"
      "name = spaced value here\n");
  ASSERT_TRUE(ini.has_value()) << ini.error().message;
  EXPECT_EQ(ini->get_or("", "top", ""), "level");
  EXPECT_TRUE(ini->get_bool("system", "simulation", false));
  EXPECT_EQ(ini->get_int("system", "machines", 0), 5);
  EXPECT_DOUBLE_EQ(ini->get_double("workload", "arrival_rate_per_minute", 0),
                   10.0);
  EXPECT_EQ(ini->get_or("workload", "name", ""), "spaced value here");
}

TEST(IniTest, BoolSpellings) {
  const auto ini = Ini::parse(
      "[b]\na = yes\nb = Off\nc = 1\nd = FALSE\ne = maybe\n");
  ASSERT_TRUE(ini.has_value());
  EXPECT_TRUE(ini->get_bool("b", "a", false));
  EXPECT_FALSE(ini->get_bool("b", "b", true));
  EXPECT_TRUE(ini->get_bool("b", "c", false));
  EXPECT_FALSE(ini->get_bool("b", "d", true));
  EXPECT_TRUE(ini->get_bool("b", "e", true));  // unparseable -> fallback
}

TEST(IniTest, MissingKeysFallBack) {
  const auto ini = Ini::parse("[s]\nk = v\n");
  ASSERT_TRUE(ini.has_value());
  EXPECT_FALSE(ini->has("s", "missing"));
  EXPECT_FALSE(ini->get("nope", "k").has_value());
  EXPECT_EQ(ini->get_int("s", "k", 7), 7);  // non-numeric -> fallback
}

TEST(IniTest, DuplicateKeysKeepLast) {
  const auto ini = Ini::parse("[s]\nk = 1\nk = 2\n");
  ASSERT_TRUE(ini.has_value());
  EXPECT_EQ(ini->get_int("s", "k", 0), 2);
}

TEST(IniTest, RejectsMalformedInput) {
  EXPECT_FALSE(Ini::parse("[unclosed\nk = v\n").has_value());
  EXPECT_FALSE(Ini::parse("[s]\nno equals sign\n").has_value());
  EXPECT_FALSE(Ini::parse("[s]\n= value\n").has_value());
}

TEST(IniTest, WriteRoundTrips) {
  Ini ini;
  ini.set("system", "machines", "5");
  ini.set("workload", "jobs", "100");
  const auto reparsed = Ini::parse(ini.write());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->get_int("system", "machines", 0), 5);
  EXPECT_EQ(reparsed->get_int("workload", "jobs", 0), 100);
}

TEST(IniTest, MissingFileFails) {
  EXPECT_FALSE(Ini::parse_file("/nonexistent/sys.ini").has_value());
}

// --------------------------------------------------------- SystemConfig ---

TEST(SystemConfigTest, RoundTrip) {
  SystemConfig config;
  config.simulation = false;
  config.machine_shape = "dgx1";
  config.machines = 3;
  config.generator.job_count = 250;
  config.generator.seed = 9;
  config.noise_sigma = 0.1;
  const auto parsed = SystemConfig::from_ini(config.to_ini());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_FALSE(parsed->simulation);
  EXPECT_EQ(parsed->machine_shape, "dgx1");
  EXPECT_EQ(parsed->machines, 3);
  EXPECT_EQ(parsed->generator.job_count, 250);
  EXPECT_EQ(parsed->generator.seed, 9u);
  EXPECT_DOUBLE_EQ(parsed->noise_sigma, 0.1);
}

TEST(SystemConfigTest, RejectsBadValues) {
  Ini bad_machines;
  bad_machines.set("system", "machines", "0");
  EXPECT_FALSE(SystemConfig::from_ini(bad_machines).has_value());

  Ini bad_shape;
  bad_shape.set("system", "machine_shape", "tpu-pod");
  EXPECT_FALSE(SystemConfig::from_ini(bad_shape).has_value());
}

TEST(SystemConfigTest, BuildTopologyMatchesShape) {
  SystemConfig config;
  config.machine_shape = "dgx1";
  config.machines = 2;
  const auto topology = build_topology(config);
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->gpu_count(), 16);
  EXPECT_EQ(topology->machine_count(), 2);
}

TEST(AlgoConfigTest, PolicyNamesAndWeights) {
  Ini ini;
  ini.set("scheduler", "policy", "topo-aware");
  ini.set("utility", "alpha_cc", "0.5");
  ini.set("utility", "alpha_b", "0.3");
  ini.set("utility", "alpha_d", "0.2");
  const auto algo = AlgoConfig::from_ini("custom", ini);
  ASSERT_TRUE(algo.has_value());
  EXPECT_EQ(algo->policy, sched::Policy::kTopoAware);
  EXPECT_DOUBLE_EQ(algo->weights.alpha_cc, 0.5);

  Ini unknown;
  unknown.set("scheduler", "policy", "round-robin");
  EXPECT_FALSE(AlgoConfig::from_ini("x", unknown).has_value());

  Ini zero;
  zero.set("scheduler", "policy", "fcfs");
  zero.set("utility", "alpha_cc", "0");
  zero.set("utility", "alpha_b", "0");
  zero.set("utility", "alpha_d", "0");
  EXPECT_FALSE(AlgoConfig::from_ini("x", zero).has_value());
}

TEST(LoadConfigurationTest, EndToEndThroughDisk) {
  const std::string dir = "/tmp/gts_config_test";
  std::remove((dir + "/sys-config.ini").c_str());
  (void)std::system(("mkdir -p " + dir).c_str());
  const auto written = write_sample_configs(dir);
  ASSERT_TRUE(written.has_value()) << written.error().message;
  EXPECT_EQ(written->size(), 5u);  // sys + 4 algorithms

  const auto loaded = load_configuration(
      dir + "/sys-config.ini",
      {dir + "/topo-aware-p-config.ini", dir + "/bf-config.ini"});
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_EQ(loaded->system.machines, 5);
  ASSERT_EQ(loaded->algorithms.size(), 2u);
  EXPECT_EQ(loaded->algorithms[0].name, "topo-aware-p");
  EXPECT_EQ(loaded->algorithms[0].policy, sched::Policy::kTopoAwareP);
  EXPECT_EQ(loaded->algorithms[1].policy, sched::Policy::kBestFit);
}

TEST(LoadConfigurationTest, RequiresAtLeastOneAlgorithm) {
  const std::string dir = "/tmp/gts_config_test2";
  (void)std::system(("mkdir -p " + dir).c_str());
  const auto written = write_sample_configs(dir);
  ASSERT_TRUE(written.has_value());
  EXPECT_FALSE(load_configuration(dir + "/sys-config.ini", {}).has_value());
}

}  // namespace
}  // namespace gts::config
