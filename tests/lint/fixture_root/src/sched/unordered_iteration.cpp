// Fixture: iterating an unordered container in a decision-path dir.
#include <string>
#include <unordered_map>

namespace fixture {

int sum_scores() {
  std::unordered_map<std::string, int> scores;
  int total = 0;
  for (const auto& [name, score] : scores) {  // finding: unordered-iteration
    total += score;
  }
  return total;
}

}  // namespace fixture
