// Fixture: pointer-keyed container in a decision-path dir.
#include <unordered_map>

namespace fixture {

struct Job {};

// finding: pointer-key (addresses differ run to run)
std::unordered_map<Job*, int> priorities;

}  // namespace fixture
