// Fixture: bare assert() instead of GTS_CHECK.
#include <cassert>

namespace fixture {

void validate(int gpus) {
  assert(gpus > 0);  // finding: bare-assert
}

}  // namespace fixture
