// Fixture: raw randomness outside util::Rng.
#include <random>

namespace fixture {

int roll() {
  std::mt19937 engine(std::random_device{}());  // finding: raw-random (x2)
  return static_cast<int>(engine());
}

}  // namespace fixture
