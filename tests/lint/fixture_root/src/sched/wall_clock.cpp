// Fixture: wall-clock read in a decision-path dir.
#include <chrono>

namespace fixture {

long long stamp() {
  const auto now = std::chrono::steady_clock::now();  // finding: wall-clock
  return now.time_since_epoch().count();
}

}  // namespace fixture
