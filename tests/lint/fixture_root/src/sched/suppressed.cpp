// Fixture: a violation carrying a GTS_LINT_ALLOW marker must be counted
// as suppressed, not reported.
#include <chrono>

namespace fixture {

long long sanctioned_stamp() {
  // Reviewed: feeds a log line only, never a decision.
  // GTS_LINT_ALLOW(wall-clock)
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace fixture
