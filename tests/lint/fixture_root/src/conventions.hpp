// Fixture: header missing '#pragma once' (finding: pragma-once) that also
// drags the std namespace into every includer.

using namespace std;  // finding: using-namespace-std
