#!/usr/bin/env python3
"""End-to-end tests for tools/gts_lint.py.

Two halves:
  * fixture scan — each rule has one deliberately violating file under
    tests/lint/fixture_root/; the scan must report exactly the expected
    (path, rule) pairs in its JSON output, flag the suppression fixture
    as suppressed (not a finding), and exit 1.
  * real-tree scan — the repository itself must be clean against the
    checked-in baseline, which makes the determinism gate part of the
    regular ctest run, not only CI.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import json
import os
import subprocess
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TESTS_DIR))
LINTER = os.path.join(REPO_ROOT, "tools", "gts_lint.py")
FIXTURE_ROOT = os.path.join(TESTS_DIR, "fixture_root")

EXPECTED_FIXTURE_FINDINGS = {
    ("src/conventions.hpp", "pragma-once"),
    ("src/conventions.hpp", "using-namespace-std"),
    ("src/sched/bare_assert.cpp", "bare-assert"),
    ("src/sched/pointer_key.cpp", "pointer-key"),
    ("src/sched/raw_random.cpp", "raw-random"),
    ("src/sched/unordered_iteration.cpp", "unordered-iteration"),
    ("src/sched/wall_clock.cpp", "wall-clock"),
}


def run_linter(*argv):
    proc = subprocess.run(
        [sys.executable, LINTER, *argv],
        capture_output=True,
        text=True,
    )
    return proc


class FixtureScanTest(unittest.TestCase):
    def setUp(self):
        self.proc = run_linter(
            "--root", FIXTURE_ROOT, "--no-baseline", "--json"
        )
        self.assertEqual(
            self.proc.returncode, 1,
            f"expected exit 1 on violating fixtures; stderr:\n"
            f"{self.proc.stderr}\nstdout:\n{self.proc.stdout}",
        )
        self.report = json.loads(self.proc.stdout)

    def test_exact_rule_ids(self):
        got = {
            (finding["path"], finding["rule"])
            for finding in self.report["findings"]
        }
        self.assertEqual(got, EXPECTED_FIXTURE_FINDINGS)

    def test_every_rule_is_covered_by_a_fixture(self):
        self.assertEqual(
            {rule for _, rule in EXPECTED_FIXTURE_FINDINGS},
            {
                "pragma-once",
                "using-namespace-std",
                "bare-assert",
                "pointer-key",
                "raw-random",
                "unordered-iteration",
                "wall-clock",
            },
        )

    def test_suppression_marker_is_honored(self):
        suppressed_paths = {
            finding["path"] for finding in self.report["findings"]
        }
        self.assertNotIn("src/sched/suppressed.cpp", suppressed_paths)
        self.assertEqual(self.report["suppressed"], 1)

    def test_findings_carry_message_and_fingerprint(self):
        for finding in self.report["findings"]:
            self.assertTrue(finding["message"])
            self.assertTrue(finding["fingerprint"])
            self.assertGreater(finding["line"], 0)


class RealTreeScanTest(unittest.TestCase):
    def test_repository_is_clean_against_baseline(self):
        proc = run_linter("--root", REPO_ROOT, "--json")
        self.assertEqual(
            proc.returncode, 0,
            f"unbaselined gts_lint findings in the tree:\n{proc.stdout}",
        )
        report = json.loads(proc.stdout)
        self.assertEqual(report["findings"], [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
