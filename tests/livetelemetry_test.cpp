// The live-telemetry layer (DESIGN.md section 18): sliding-window
// aggregates, the Prometheus text exposition, the crash-safe flight
// recorder, and the per-job lifecycle/SLO accounting. The contracts
// under test:
//
//   * windows advance and expire deterministically under the manual
//     window clock (no wall-clock flakiness);
//   * the exposition round-trips the Prometheus 0.0.4 grammar — every
//     sample family is typed, histogram buckets are cumulative and
//     +Inf-terminated;
//   * the flight ring wraps keeping the most recent events, and a
//     GTS_CHECK failure dumps it to the configured path;
//   * lifecycle accounting matches a hand-computed five-job trace;
//   * the whole layer is a pure observer: a seeded 500-job trace
//     schedules identically with windows + flight recorder on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "cluster/recorder.hpp"
#include "exp/scenarios.hpp"
#include "json/json.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"
#include "obs/window.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace gts::obs {
namespace {

using topo::builders::MachineShape;

/// Every test starts and ends with observability fully off, the window
/// clock back on wall time, and the check machinery in its default mode.
class LiveTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override {
    reset();
    check::set_failure_mode(check::FailureMode::kAbort);
    check::reset_failure_count();
  }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
  }
};

ObsConfig windows_config() {
  ObsConfig config;
  config.windows = true;
  return config;
}

const WindowedStats::SpanSnapshot* span_of(
    const std::vector<WindowedStats::SpanSnapshot>& spans, const char* label) {
  for (const auto& span : spans) {
    if (span.label == label) return &span;
  }
  return nullptr;
}

// --- windows: zero-cost off, deterministic advancement under sim clock --

TEST_F(LiveTelemetryTest, DisabledWindowsRecordNothingAndSkipTheValueArg) {
  ASSERT_FALSE(windows_enabled());
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 1.0;
  };
  GTS_METRIC_WINDOW("off.latency", expensive(), latency_bounds_us());
  EXPECT_EQ(evaluations, 0) << "value argument evaluated while disabled";
  EXPECT_EQ(WindowRegistry::instance().instrument_count(), 0u);
}

TEST_F(LiveTelemetryTest, WindowAdvancementAndExpiryAreDeterministic) {
  ASSERT_TRUE(configure(windows_config()));
  set_window_clock_us(1'000'000);  // t = 1 s

  WindowedStats& stats =
      WindowRegistry::instance().stats("test.latency", latency_bounds_us());
  for (int i = 0; i < 10; ++i) stats.record(100.0);

  // All three spans see the burst, rate = count / span.
  auto spans = stats.snapshot();
  ASSERT_EQ(spans.size(), window_spans().size());
  const auto* w10s = span_of(spans, "10s");
  const auto* w1m = span_of(spans, "1m");
  const auto* w5m = span_of(spans, "5m");
  ASSERT_TRUE(w10s && w1m && w5m);
  EXPECT_EQ(w10s->count, 10);
  EXPECT_DOUBLE_EQ(w10s->rate_per_s, 10.0 / w10s->span_s);
  EXPECT_EQ(w1m->count, 10);
  EXPECT_EQ(w5m->count, 10);
  EXPECT_DOUBLE_EQ(w10s->histogram.mean(), 100.0);

  // t = 8 s: still inside every span.
  set_window_clock_us(8'000'000);
  spans = stats.snapshot();
  EXPECT_EQ(span_of(spans, "10s")->count, 10);

  // t = 15 s: the burst at t=1 s fell out of the 10 s window but not the
  // longer ones.
  set_window_clock_us(15'000'000);
  spans = stats.snapshot();
  EXPECT_EQ(span_of(spans, "10s")->count, 0);
  EXPECT_EQ(span_of(spans, "1m")->count, 10);
  EXPECT_EQ(span_of(spans, "5m")->count, 10);

  // t = 90 s: out of the 1 m window too.
  set_window_clock_us(90'000'000);
  spans = stats.snapshot();
  EXPECT_EQ(span_of(spans, "1m")->count, 0);
  EXPECT_EQ(span_of(spans, "5m")->count, 10);

  // t = 6 min: everything expired. Same clock, same answer — run twice.
  set_window_clock_us(360'000'000);
  for (int round = 0; round < 2; ++round) {
    spans = stats.snapshot();
    for (const auto& span : spans) {
      EXPECT_EQ(span.count, 0) << span.label << " round " << round;
      EXPECT_DOUBLE_EQ(span.rate_per_s, 0.0) << span.label;
    }
  }
}

TEST_F(LiveTelemetryTest, WindowQuantilesComeFromTheMergedHistogram) {
  ASSERT_TRUE(configure(windows_config()));
  set_window_clock_us(1'000'000);
  WindowedStats& stats =
      WindowRegistry::instance().stats("test.quantiles", latency_bounds_us());
  // 100 samples spread 1..100 us: p50 lands near 50, p99 near 100.
  for (int i = 1; i <= 100; ++i) stats.record(static_cast<double>(i));
  const auto spans = stats.snapshot();
  const auto* w10s = span_of(spans, "10s");
  ASSERT_TRUE(w10s);
  EXPECT_EQ(w10s->count, 100);
  EXPECT_NEAR(w10s->histogram.percentile(0.50), 50.0, 10.0);
  EXPECT_NEAR(w10s->histogram.percentile(0.99), 100.0, 10.0);
  EXPECT_DOUBLE_EQ(w10s->histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(w10s->histogram.max(), 100.0);

  // The registry snapshot carries the same numbers per span label.
  const json::Value doc = WindowRegistry::instance().snapshot_json();
  const json::Value& entries = doc.at("windows").at("test.quantiles");
  ASSERT_TRUE(entries.is_array());
  ASSERT_EQ(entries.as_array().size(), window_spans().size());
  const json::Value& first = entries.as_array().front();
  EXPECT_EQ(first.at("span").as_string(), "10s");
  EXPECT_DOUBLE_EQ(first.at("count").as_number(), 100.0);
  EXPECT_TRUE(first.at("p50").is_number());
  EXPECT_TRUE(first.at("p95").is_number());
  EXPECT_TRUE(first.at("p99").is_number());
}

// --- prometheus exposition ----------------------------------------------

TEST_F(LiveTelemetryTest, PrometheusNamesAreSanitizedWithThePrefix) {
  EXPECT_EQ(prometheus_name("sched.decision_latency_us"),
            "gts_sched_decision_latency_us");
  EXPECT_EQ(prometheus_name("svc.queue-depth"), "gts_svc_queue_depth");
  EXPECT_EQ(prometheus_name("weird  name!"), "gts_weird__name_");
}

/// Minimal Prometheus 0.0.4 grammar checker mirroring
/// tools/validate_trace.py: every sample's family must be typed, and
/// histogram buckets must be cumulative and +Inf-terminated.
void expect_valid_exposition(const std::string& text) {
  std::map<std::string, std::string> family_type;
  // (family, label-set-minus-le) -> cumulative bucket counts in order.
  std::map<std::string, std::vector<double>> buckets;
  std::map<std::string, double> histogram_count;

  const auto family_of = [](std::string name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        return name.substr(0, name.size() - s.size());
      }
    }
    return name;
  };

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      EXPECT_EQ(family_type.count(name), 0u) << "duplicate TYPE for " << name;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram" ||
                  type == "summary" || type == "untyped")
          << line;
      family_type[name] = type;
      continue;
    }
    if (line[0] == '#') continue;

    const size_t brace = line.find('{');
    const size_t space = line.find(' ', brace == std::string::npos ? 0 : line.find('}'));
    ASSERT_NE(space, std::string::npos) << "no value: " << line;
    const std::string name =
        line.substr(0, brace == std::string::npos ? space : brace);
    const std::string family = family_of(name);
    ASSERT_TRUE(family_type.count(family))
        << "sample without # TYPE: " << line;
    const std::string value_text = line.substr(space + 1);
    double value = 0.0;
    if (value_text.find("Inf") != std::string::npos) {
      value = std::numeric_limits<double>::infinity();
    } else {
      value = std::stod(value_text);
    }

    if (family_type[family] == "histogram" &&
        name.size() >= 7 && name.compare(name.size() - 7, 7, "_bucket") == 0) {
      // Key the series by its labels with le= stripped.
      std::string labels = brace == std::string::npos
                               ? std::string{}
                               : line.substr(brace, line.find('}') - brace + 1);
      const size_t le = labels.find("le=\"");
      std::string le_value;
      if (le != std::string::npos) {
        const size_t end = labels.find('"', le + 4);
        le_value = labels.substr(le + 4, end - le - 4);
        labels.erase(le, end - le + 2);
      }
      buckets[family + labels].push_back(value);
      if (le_value == "+Inf") {
        histogram_count[family + labels] = value;
      }
    }
    if (family_type[family] == "counter") {
      EXPECT_GE(value, 0.0) << "negative counter: " << line;
    }
  }

  EXPECT_FALSE(family_type.empty()) << "empty exposition";
  for (const auto& [key, series] : buckets) {
    ASSERT_TRUE(histogram_count.count(key)) << key << " has no +Inf bucket";
    double previous = -1.0;
    for (const double v : series) {
      EXPECT_GE(v, previous) << key << " buckets not cumulative";
      previous = v;
    }
  }
}

TEST_F(LiveTelemetryTest, PrometheusTextRoundTripsTheGrammar) {
  ObsConfig config;
  config.metrics = true;
  config.windows = true;
  ASSERT_TRUE(configure(config));
  set_window_clock_us(1'000'000);

  GTS_METRIC_COUNT("sched.decisions", 7);
  GTS_METRIC_GAUGE_SET("svc.queue_depth", 3.0);
  for (int i = 0; i < 50; ++i) {
    GTS_METRIC_HISTOGRAM("sched.decision_latency_us",
                         static_cast<double>(10 * i), latency_bounds_us());
    GTS_METRIC_WINDOW("sched.decision_latency_us",
                      static_cast<double>(10 * i), latency_bounds_us());
  }

  std::string text = prometheus_text();
  append_prometheus_gauge(text, "gts_svc_queue_depth_live",
                          "Jobs queued right now.", 3.0);
  expect_valid_exposition(text);

  // The windowed families are present with the flat label scheme.
  EXPECT_NE(text.find("# TYPE gts_window gauge"), std::string::npos);
  EXPECT_NE(
      text.find("gts_window{metric=\"sched.decision_latency_us\",span=\"10s\","
                "stat=\"p50\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("gts_window_rate{metric=\"sched.decision_latency_us\","
                "span=\"1m\"}"),
      std::string::npos);
  // The cumulative histogram carries its terminating bucket.
  EXPECT_NE(text.find("gts_sched_decision_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gts_svc_queue_depth_live"), std::string::npos);
}

// --- flight recorder ----------------------------------------------------

TEST_F(LiveTelemetryTest, FlightRingWrapsKeepingTheMostRecentEvents) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.enable(16);
  ASSERT_GE(recorder.capacity(), 16u);
  const std::size_t capacity = recorder.capacity();

  for (int i = 0; i < 100; ++i) {
    recorder.record(FlightKind::kDecision, i, static_cast<double>(i), 0.0,
                    "wrap", static_cast<double>(i) * 0.5);
  }
  EXPECT_EQ(recorder.recorded(), 100u);

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), capacity);
  // Oldest first, contiguous, and ending at the newest event.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().seq, 99u);
  EXPECT_EQ(events.back().job, 99);
  EXPECT_DOUBLE_EQ(events.back().sim_s, 49.5);
  EXPECT_EQ(events.front().job, static_cast<int>(100 - capacity));
  EXPECT_STREQ(events.front().detail, "wrap");
}

TEST_F(LiveTelemetryTest, FlightDumpIsParseableJsonlWithSanitizedDetail) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.enable(64);
  recorder.record(FlightKind::kAdmission, 1, 2.0, 3.0, "plain");
  recorder.record(FlightKind::kError, -1, 0.0, 0.0, "quote\" and\nnewline");

  const std::string dump = recorder.dump_jsonl();
  std::istringstream lines(dump);
  std::string line;
  int parsed = 0;
  std::uint64_t previous_seq = 0;
  while (std::getline(lines, line)) {
    const auto doc = json::parse(line);
    ASSERT_TRUE(doc) << line;
    EXPECT_EQ(doc->at("kind").as_string(), "flight");
    EXPECT_TRUE(doc->at("seq").is_number());
    EXPECT_TRUE(doc->at("wall_us").is_number());
    EXPECT_TRUE(doc->at("job").is_number());
    const std::string event = doc->at("event").as_string();
    EXPECT_TRUE(event == "admission" || event == "error") << event;
    const auto seq = static_cast<std::uint64_t>(doc->at("seq").as_number());
    if (parsed > 0) {
      EXPECT_GT(seq, previous_seq);
    }
    previous_seq = seq;
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST_F(LiveTelemetryTest, CheckFailureDumpsTheFlightRingToTheConfiguredPath) {
  const std::string dump_path = temp_path("flight_check_failure.jsonl");
  std::remove(dump_path.c_str());

  ObsConfig config;
  config.flight = true;
  config.flight_capacity = 64;
  config.flight_out = dump_path;
  ASSERT_TRUE(configure(config));
  GTS_FLIGHT(FlightKind::kDecision, 7, 123.0, 0.0, "before-failure");

  // The obs hook consults the failure mode after dumping; kLogAndCount
  // lets the test continue past the failed check.
  check::set_failure_mode(check::FailureMode::kLogAndCount);
  GTS_CHECK(1 + 1 == 3, "deliberate");
  EXPECT_EQ(check::failure_count(), 1u);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no dump at " << dump_path;
  bool saw_error = false;
  bool saw_decision = false;
  std::string line;
  while (std::getline(in, line)) {
    const auto doc = json::parse(line);
    ASSERT_TRUE(doc) << line;
    EXPECT_EQ(doc->at("kind").as_string(), "flight");
    const std::string event = doc->at("event").as_string();
    if (event == "error") {
      saw_error = true;
      // The failed condition text lands in the detail field.
      EXPECT_NE(doc->at("detail").as_string().find("1 + 1"),
                std::string::npos);
    }
    if (event == "decision") saw_decision = true;
  }
  EXPECT_TRUE(saw_error) << "check failure not recorded as a kError event";
  EXPECT_TRUE(saw_decision) << "pre-failure history missing from the dump";
  std::remove(dump_path.c_str());
}

// --- lifecycle accounting -----------------------------------------------

jobgraph::JobRequest lifecycle_job(int id, double arrival, double solo_time,
                                   double min_utility) {
  jobgraph::JobRequest request;
  request.id = id;
  request.arrival_time = arrival;
  request.num_gpus = 2;
  request.min_utility = min_utility;
  request.profile.solo_time_pack = solo_time;
  return request;
}

// Five jobs, every transition scripted by hand:
//   1: placed immediately at high utility, finishes     (the happy path)
//   2: postponed twice, degraded placement below its SLO, finishes
//   3: postponed once, clean placement, finishes
//   4: cancelled while still queued
//   5: postponed three times, still queued at the end
TEST_F(LiveTelemetryTest, LifecycleAccountingMatchesAHandComputedTrace) {
  cluster::Recorder recorder;
  recorder.on_submit(lifecycle_job(1, 0.0, 100.0, 0.5));
  recorder.on_submit(lifecycle_job(2, 10.0, 50.0, 0.8));
  recorder.on_submit(lifecycle_job(3, 20.0, 80.0, 0.0));
  recorder.on_submit(lifecycle_job(4, 30.0, 60.0, 0.0));
  recorder.on_submit(lifecycle_job(5, 40.0, 60.0, 0.0));

  recorder.on_place(1, 0.0, {0, 1}, 0.9, true);
  recorder.on_postpone(2);
  recorder.on_postpone(2);
  recorder.on_place(2, 30.0, {2, 3}, 0.7, false);  // below min_utility 0.8
  recorder.on_postpone(3);
  recorder.on_place(3, 40.0, {4, 5}, 1.0, true);
  recorder.on_cancel(4, 50.0);
  recorder.on_postpone(5);
  recorder.on_postpone(5);
  recorder.on_postpone(5);
  recorder.on_finish(2, 110.0);
  recorder.on_finish(1, 120.0);
  recorder.on_finish(3, 140.0);

  const cluster::JobRecord* job1 = recorder.find(1);
  const cluster::JobRecord* job2 = recorder.find(2);
  const cluster::JobRecord* job4 = recorder.find(4);
  const cluster::JobRecord* job5 = recorder.find(5);
  ASSERT_TRUE(job1 && job2 && job4 && job5);

  // Job 1: no wait, JCT 120 s over a 100 s ideal.
  EXPECT_DOUBLE_EQ(job1->waiting_time(), 0.0);
  EXPECT_DOUBLE_EQ(job1->jct_slowdown(), 1.2);
  EXPECT_EQ(job1->postponements, 0);
  EXPECT_FALSE(job1->slo_violated());

  // Job 2: waited 20 s, placed below its declared minimum.
  EXPECT_DOUBLE_EQ(job2->waiting_time(), 20.0);
  EXPECT_EQ(job2->postponements, 2);
  EXPECT_EQ(job2->degradation_events, 1);
  EXPECT_TRUE(job2->slo_violated());
  EXPECT_DOUBLE_EQ(job2->jct_slowdown(), (110.0 - 10.0) / 50.0);

  // Job 4: cancelled jobs are neither placed nor finished.
  EXPECT_TRUE(job4->cancelled);
  EXPECT_FALSE(job4->placed());
  EXPECT_FALSE(job4->finished());
  EXPECT_DOUBLE_EQ(job4->jct_slowdown(), -1.0);

  // Job 5: still queued — postponements accrue, nothing else does.
  EXPECT_EQ(job5->postponements, 3);
  EXPECT_FALSE(job5->placed());

  // Aggregates over the whole trace.
  EXPECT_EQ(recorder.total_postponements(), 6);
  EXPECT_EQ(recorder.total_degradations(), 1);
  EXPECT_EQ(recorder.slo_violations(), 1);
  EXPECT_DOUBLE_EQ(recorder.makespan(), 140.0);
  EXPECT_DOUBLE_EQ(recorder.mean_waiting_time(), (0.0 + 20.0 + 20.0) / 3.0);
  EXPECT_NEAR(recorder.mean_jct_slowdown(), (1.2 + 2.0 + 1.5) / 3.0, 1e-12);
}

// --- the headline property, extended over the live layer ----------------

TEST_F(LiveTelemetryTest, LiveTelemetryIsAPureObserverOn500JobTrace) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(5, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  trace::GeneratorOptions gen;
  gen.job_count = 500;
  gen.seed = 20260806;
  const auto jobs = trace::generate_workload(gen, model, topology);

  // Baseline: everything off (the SetUp reset).
  const sched::DriverReport baseline = exp::run_policy(
      sched::Policy::kTopoAwareP, jobs, topology, model, {},
      /*record_series=*/false);

  ObsConfig config;
  config.metrics = true;
  config.windows = true;
  config.flight = true;
  config.flight_capacity = 1024;
  ASSERT_TRUE(configure(config));
  const sched::DriverReport observed = exp::run_policy(
      sched::Policy::kTopoAwareP, jobs, topology, model, {},
      /*record_series=*/false);

  ASSERT_EQ(baseline.recorder.records().size(), 500u);
  ASSERT_EQ(observed.recorder.records().size(), 500u);
  for (size_t i = 0; i < baseline.recorder.records().size(); ++i) {
    const cluster::JobRecord& a = observed.recorder.records()[i];
    const cluster::JobRecord& b = baseline.recorder.records()[i];
    EXPECT_EQ(a.id, b.id) << "record " << i;
    EXPECT_EQ(a.gpus, b.gpus) << "record " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << "record " << i;
    EXPECT_DOUBLE_EQ(a.end, b.end) << "record " << i;
    EXPECT_DOUBLE_EQ(a.placement_utility, b.placement_utility)
        << "record " << i;
    EXPECT_EQ(a.postponements, b.postponements) << "record " << i;
    EXPECT_EQ(a.degradation_events, b.degradation_events) << "record " << i;
  }
  EXPECT_EQ(observed.recorder.total_postponements(),
            baseline.recorder.total_postponements());
  EXPECT_EQ(observed.recorder.slo_violations(),
            baseline.recorder.slo_violations());

  // And the layer actually observed the run.
  EXPECT_GT(WindowRegistry::instance().instrument_count(), 0u);
  EXPECT_GT(FlightRecorder::instance().recorded(), 0u);
}

// --- concurrency (the TSan target) --------------------------------------

TEST_F(LiveTelemetryTest, ConcurrentRecordAndSnapshotAreRaceFree) {
  ObsConfig config;
  config.windows = true;
  config.flight = true;
  config.flight_capacity = 256;
  ASSERT_TRUE(configure(config));
  WindowedStats& stats =
      WindowRegistry::instance().stats("test.concurrent", latency_bounds_us());

  constexpr int kWriters = 4;
  constexpr int kSamplesPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)stats.snapshot();
      (void)FlightRecorder::instance().snapshot();
      (void)prometheus_text();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kSamplesPerWriter; ++i) {
        stats.record(static_cast<double>(i % 100));
        GTS_FLIGHT(FlightKind::kDecision, w, static_cast<double>(i), 0.0,
                   "concurrent");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(FlightRecorder::instance().recorded(),
            static_cast<std::uint64_t>(kWriters) * kSamplesPerWriter);
  // Sample loss from slot reclaims racing the recorder is tolerated but
  // must be tiny; all samples land in the 5m window absent expiry.
  const auto spans = stats.snapshot();
  const auto* w5m = span_of(spans, "5m");
  ASSERT_TRUE(w5m);
  EXPECT_GT(w5m->count, kWriters * kSamplesPerWriter * 9 / 10);
}

}  // namespace
}  // namespace gts::obs
