// Seeded property suite over randomly generated topologies and job
// graphs: every structure the pipeline produces must satisfy its
// invariants regardless of the random configuration. Each seeded instance
// runs ~200 random cases per property, so the suite covers a few thousand
// distinct (topology, job graph, availability) combinations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "check/audit.hpp"
#include "cluster/state.hpp"
#include "jobgraph/jobgraph.hpp"
#include "partition/drb.hpp"
#include "partition/fm.hpp"
#include "perf/model.hpp"
#include "sched/scheduler.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace gts {
namespace {

using topo::builders::MachineShape;

constexpr int kSeeds = 8;
constexpr int kCasesPerSeed = 200;

MachineShape random_shape(util::Rng& rng) {
  switch (rng.uniform_int(3)) {
    case 0: return MachineShape::kPower8Minsky;
    case 1: return MachineShape::kPower8Pcie;
    default: return MachineShape::kDgx1;
  }
}

topo::TopologyGraph random_cluster(util::Rng& rng, int max_machines = 3) {
  const int machines =
      1 + static_cast<int>(rng.uniform_int(
              static_cast<std::uint64_t>(max_machines)));
  if (machines == 1) {
    // Single machines exercise the bare builders too.
    switch (rng.uniform_int(3)) {
      case 0: return topo::builders::power8_minsky();
      case 1: return topo::builders::power8_pcie();
      default: return topo::builders::dgx1();
    }
  }
  if (rng.uniform() < 0.3) {
    std::vector<MachineShape> shapes;
    for (int m = 0; m < machines; ++m) shapes.push_back(random_shape(rng));
    return topo::builders::mixed_cluster(shapes);
  }
  return topo::builders::cluster(machines, random_shape(rng));
}

jobgraph::JobGraph random_job_graph(util::Rng& rng, int max_tasks = 6) {
  const int tasks = 1 + static_cast<int>(rng.uniform_int(
                            static_cast<std::uint64_t>(max_tasks)));
  const double weight = rng.uniform(0.5, 4.0);
  switch (rng.uniform_int(3)) {
    case 0: return jobgraph::JobGraph::all_to_all(tasks, weight);
    case 1: return jobgraph::JobGraph::ring(tasks, weight);
    default: {
      // Random sparse graph: each pair connected with probability 0.5.
      jobgraph::JobGraph graph(tasks);
      for (int a = 0; a < tasks; ++a) {
        for (int b = a + 1; b < tasks; ++b) {
          if (rng.uniform() < 0.5) graph.add_edge(a, b, rng.uniform(0.1, 5.0));
        }
      }
      return graph;
    }
  }
}

class InvariantTest : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{util::Rng::for_stream(
      static_cast<std::uint64_t>(GetParam()), /*stream=*/0xABCD)};
};

// Every random topology and job graph passes its deep validator.
TEST_P(InvariantTest, GeneratedStructuresValidate) {
  for (int i = 0; i < kCasesPerSeed; ++i) {
    const topo::TopologyGraph topology = random_cluster(rng_);
    const util::Status topo_status = check::validate(topology);
    EXPECT_TRUE(topo_status.is_ok()) << topo_status.error().message;

    const jobgraph::JobGraph graph = random_job_graph(rng_);
    const util::Status graph_status = check::validate(graph);
    EXPECT_TRUE(graph_status.is_ok()) << graph_status.error().message;
  }
}

// FM keeps both sides within the requested balance envelope and never
// produces a cut worse than the initial one.
TEST_P(InvariantTest, FmBipartitionsStayBalanced) {
  for (int i = 0; i < kCasesPerSeed; ++i) {
    const int n = 4 + static_cast<int>(rng_.uniform_int(12));
    partition::FmGraph graph;
    graph.vertex_count = n;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng_.uniform() < 0.4) {
          graph.edges.push_back({a, b, rng_.uniform(0.1, 5.0)});
        }
      }
    }
    std::vector<int> initial(static_cast<size_t>(n));
    for (auto& side : initial) side = static_cast<int>(rng_.uniform_int(2));
    if (std::count(initial.begin(), initial.end(), 0) == 0) initial[0] = 0;
    if (std::count(initial.begin(), initial.end(), 1) == 0) initial[0] = 1;

    partition::FmOptions options;
    options.min_side = 1;
    options.max_side_fraction = rng_.uniform(0.5, 0.75);

    // FM's documented balance envelope: the requested fraction with a
    // one-vertex slack (so moves exist from an exactly-balanced start),
    // never eating into min_side. An initial partition already outside the
    // envelope can only shrink its big side (over-limit moves are barred).
    long long allowed =
        static_cast<long long>(options.max_side_fraction * n);
    allowed = std::max(allowed, static_cast<long long>(n) / 2 + 1);
    allowed = std::min(allowed, static_cast<long long>(n - options.min_side));
    const auto initial0 = std::count(initial.begin(), initial.end(), 0);
    const long long initial_max = std::max<long long>(initial0, n - initial0);

    const double before = partition::cut_weight(graph, initial);
    const partition::FmResult result =
        partition::fm_bipartition(graph, initial, options);

    EXPECT_LE(result.cut_weight, before + 1e-9) << "seed case " << i;
    const long long side0 =
        std::count(result.side.begin(), result.side.end(), 0);
    const long long side1 = n - side0;
    const long long limit = std::max(allowed, initial_max);
    EXPECT_GE(side0, options.min_side) << "seed case " << i;
    EXPECT_GE(side1, options.min_side) << "seed case " << i;
    EXPECT_LE(side0, limit) << "seed case " << i;
    EXPECT_LE(side1, limit) << "seed case " << i;
  }
}

/// Pack-preferring callbacks, as the schedulers use in spirit.
class PackingCallbacks : public partition::DrbCallbacks {
 public:
  double task_utility(int, int side,
                      const partition::BipartitionView& view) const override {
    const std::vector<int>& gpus = side == 0 ? view.gpus0 : view.gpus1;
    const std::vector<int>& tasks = side == 0 ? view.tasks0 : view.tasks1;
    if (gpus.empty()) return 0.0;
    return static_cast<double>(tasks.size()) * 10.0 +
           static_cast<double>(gpus.size());
  }
};

// drb_map only ever hands out GPUs from the available set, each at most
// once, and completes whenever it claims to.
TEST_P(InvariantTest, DrbAssignsOnlyAvailableGpus) {
  const PackingCallbacks callbacks;
  for (int i = 0; i < kCasesPerSeed; ++i) {
    const topo::TopologyGraph topology = random_cluster(rng_);
    std::vector<int> available;
    for (int gpu = 0; gpu < topology.gpu_count(); ++gpu) {
      if (rng_.uniform() < 0.6) available.push_back(gpu);
    }
    const jobgraph::JobGraph job = random_job_graph(rng_);
    partition::DrbOptions options;
    switch (rng_.uniform_int(3)) {
      case 0: options.span = partition::SpanMode::kPreferPack; break;
      case 1: options.span = partition::SpanMode::kSingleNode; break;
      default: options.span = partition::SpanMode::kAntiCollocate; break;
    }
    const partition::DrbResult result =
        partition::drb_map(job, available, topology, callbacks, options);

    if (static_cast<int>(available.size()) < job.task_count()) {
      EXPECT_FALSE(result.complete) << "seed case " << i;
    }
    std::set<int> used;
    for (const int gpu : result.assignment) {
      if (gpu < 0) continue;
      EXPECT_TRUE(std::find(available.begin(), available.end(), gpu) !=
                  available.end())
          << "seed case " << i << ": GPU " << gpu << " not available";
      EXPECT_TRUE(used.insert(gpu).second)
          << "seed case " << i << ": GPU " << gpu << " assigned twice";
    }
    if (result.complete) {
      EXPECT_EQ(used.size(), static_cast<size_t>(job.task_count()))
          << "seed case " << i;
      if (options.span == partition::SpanMode::kSingleNode) {
        std::set<int> machines;
        for (const int gpu : result.gpus()) {
          machines.insert(topology.machine_of_gpu(gpu));
        }
        EXPECT_EQ(machines.size(), 1u) << "seed case " << i;
      }
      if (options.span == partition::SpanMode::kAntiCollocate) {
        std::set<int> machines;
        for (const int gpu : result.gpus()) {
          machines.insert(topology.machine_of_gpu(gpu));
        }
        EXPECT_EQ(machines.size(), static_cast<size_t>(job.task_count()))
            << "seed case " << i;
      }
    }
  }
}

// Every placement drb_place accepts on an evolving cluster passes the
// check subsystem's full feasibility audit.
TEST_P(InvariantTest, AcceptedPlacementsPassAudit) {
  // A smaller case count: each case is a whole multi-job episode.
  const int episodes = kCasesPerSeed / 10;
  for (int episode = 0; episode < episodes; ++episode) {
    const topo::TopologyGraph topology = random_cluster(rng_);
    const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
    cluster::ClusterState state(topology, model);
    const sched::UtilityModel utility{};

    trace::GeneratorOptions generator;
    generator.job_count = 10;
    generator.seed = rng_.next();
    const std::vector<jobgraph::JobRequest> jobs =
        trace::generate_workload(generator, model, topology);

    double now = 0.0;
    for (const jobgraph::JobRequest& request : jobs) {
      const std::vector<int> available = sched::filter_hosts(request, state);
      if (available.empty()) continue;
      const std::optional<sched::Placement> placement =
          sched::drb_place(request, available, state, utility);
      if (!placement) continue;
      const util::Status audit =
          check::audit_placement(request, placement->gpus, state);
      EXPECT_TRUE(audit.is_ok())
          << "episode " << episode << " job " << request.id << ": "
          << audit.error().message;
      if (!audit.is_ok()) continue;
      now += 1.0;
      state.place(request, placement->gpus, now, placement->utility);
      // Randomly retire a running job so availability keeps shifting.
      if (!state.running_jobs().empty() && rng_.uniform() < 0.4) {
        const int victim = state.running_jobs().begin()->first;
        state.remove(victim, now);
      }
    }
    const util::Status final_state = check::validate(state);
    EXPECT_TRUE(final_state.is_ok()) << final_state.error().message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, InvariantTest, ::testing::Range(0, kSeeds));

}  // namespace
}  // namespace gts
