// Tests for the check subsystem: the GTS_CHECK macro family and failure
// handler modes, the deep structural validators, and the scheduler
// placement audit — including the contract that a deliberately corrupted
// ClusterState (double-allocated GPU) is caught while valid states pass.
#include <gtest/gtest.h>

#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "cluster/state.hpp"
#include "perf/profile.hpp"
#include "sched/driver.hpp"
#include "sched/scheduler.hpp"
#include "topo/builders.hpp"

namespace gts {
namespace {

using check::FailureMode;
using check::ScopedFailureMode;
using jobgraph::JobRequest;
using jobgraph::NeuralNet;

// --- GTS_CHECK macro family -----------------------------------------------

TEST(CheckMacros, PassingCheckIsSilent) {
  check::reset_failure_count();
  GTS_CHECK(1 + 1 == 2);
  GTS_CHECK_EQ(4, 2 + 2);
  GTS_CHECK_LT(1, 2);
  EXPECT_EQ(check::failure_count(), 0u);
}

TEST(CheckMacros, ThrowModeCarriesConditionAndFormattedMessage) {
  const ScopedFailureMode mode(FailureMode::kThrow);
  try {
    const int x = 42;
    GTS_CHECK(x < 0, "x=", x, " should be negative");
    FAIL() << "GTS_CHECK did not throw";
  } catch (const check::CheckFailedError& error) {
    EXPECT_STREQ(error.info().condition, "x < 0");
    EXPECT_EQ(error.info().message, "x=42 should be negative");
    EXPECT_GT(error.info().line, 0);
    EXPECT_NE(std::string(error.info().file).find("check_test.cpp"),
              std::string::npos);
  }
}

TEST(CheckMacros, ComparisonChecksReportBothOperands) {
  const ScopedFailureMode mode(FailureMode::kThrow);
  try {
    GTS_CHECK_EQ(2 + 2, 5);
    FAIL() << "GTS_CHECK_EQ did not throw";
  } catch (const check::CheckFailedError& error) {
    EXPECT_EQ(error.info().message, "lhs=4 rhs=5");
  }
}

TEST(CheckMacros, LogAndCountModeContinuesExecution) {
  const ScopedFailureMode mode(FailureMode::kLogAndCount);
  check::reset_failure_count();
  bool reached = false;
  GTS_CHECK(false, "soft failure");
  reached = true;  // production mode: counted, not fatal
  EXPECT_TRUE(reached);
  EXPECT_EQ(check::failure_count(), 1u);
  EXPECT_EQ(check::last_failure().message, "soft failure");
  GTS_CHECK_GE(1, 2);
  EXPECT_EQ(check::failure_count(), 2u);
}

TEST(CheckMacros, CustomHandlerReplacesModeBehaviour) {
  const ScopedFailureMode mode(FailureMode::kAbort);  // would abort if used
  std::vector<std::string> seen;
  check::set_failure_handler([&seen](const check::FailureInfo& info) {
    seen.push_back(info.to_string());
  });
  GTS_CHECK(false, "handled");
  check::set_failure_handler(nullptr);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_NE(seen[0].find("check failed: false"), std::string::npos);
  EXPECT_NE(seen[0].find("handled"), std::string::npos);
}

TEST(CheckMacros, DcheckMatchesBuildConfiguration) {
  const ScopedFailureMode mode(FailureMode::kThrow);
#if GTS_DCHECKS_ENABLED
  EXPECT_THROW(GTS_DCHECK(false, "debug check"), check::CheckFailedError);
#else
  GTS_DCHECK(false, "debug check");  // compiled out: must not evaluate
  SUCCEED();
#endif
}

// --- validate(JobGraph) ----------------------------------------------------

TEST(JobGraphValidator, WellFormedGraphsPass) {
  EXPECT_TRUE(check::validate(jobgraph::JobGraph::all_to_all(4, 2.0)).is_ok());
  EXPECT_TRUE(check::validate(jobgraph::JobGraph::ring(5, 1.0)).is_ok());
  EXPECT_TRUE(check::validate(jobgraph::JobGraph(1)).is_ok());
}

TEST(JobGraphValidator, OutOfBoundsEdgeCaught) {
  // Sneak a corrupt edge past add_edge's own check via log-and-count mode.
  const ScopedFailureMode mode(FailureMode::kLogAndCount);
  jobgraph::JobGraph graph(2);
  graph.add_edge(0, 5, 1.0);
  const util::Status status = check::validate(graph);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.error().message.find("out of bounds"), std::string::npos);
}

TEST(JobGraphValidator, DuplicateEdgeCaught) {
  jobgraph::JobGraph graph(3);
  graph.add_edge(0, 1, 1.0);
  graph.add_edge(1, 0, 2.0);  // same pair, normalized
  const util::Status status = check::validate(graph);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.error().message.find("duplicate"), std::string::npos);
}

// --- validate(TopologyGraph) ----------------------------------------------

TEST(TopologyValidator, BuilderTopologiesPass) {
  EXPECT_TRUE(check::validate(topo::builders::power8_minsky()).is_ok());
  EXPECT_TRUE(check::validate(topo::builders::dgx1()).is_ok());
  EXPECT_TRUE(
      check::validate(
          topo::builders::cluster(4, topo::builders::MachineShape::kDgx1))
          .is_ok());
}

TEST(TopologyValidator, DisconnectedGraphCaught) {
  topo::TopologyGraph graph;
  topo::Node machine;
  machine.kind = topo::NodeKind::kMachine;
  machine.machine = 0;
  graph.add_node(machine);
  graph.add_node(machine);  // second island, no link between them
  const util::Status status = check::validate(graph);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.error().message.find("not connected"), std::string::npos);
}

// --- ClusterState audit ----------------------------------------------------

class ClusterAuditTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ =
      topo::builders::cluster(2, topo::builders::MachineShape::kPower8Minsky);
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  cluster::ClusterState state_{topo_, model_};

  JobRequest job(int id, int gpus) {
    return perf::make_profiled_dl(id, 0.0, NeuralNet::kAlexNet, 8, gpus, 0.0,
                                  model_, topo_, 100);
  }
};

TEST_F(ClusterAuditTest, ValidStatesPass) {
  EXPECT_TRUE(check::validate(state_).is_ok());
  state_.place(job(1, 2), {0, 1}, 0.0);
  state_.place(job(2, 2), {4, 5}, 1.0);
  EXPECT_TRUE(check::validate(state_).is_ok());
  state_.remove(1, 2.0);
  EXPECT_TRUE(check::validate(state_).is_ok());
}

TEST_F(ClusterAuditTest, PlacementAuditAcceptsFeasiblePlacement) {
  state_.place(job(1, 2), {0, 1}, 0.0);
  EXPECT_TRUE(
      check::audit_placement(job(2, 2), std::vector<int>{2, 3}, state_)
          .is_ok());
}

TEST_F(ClusterAuditTest, PlacementAuditCatchesDoubleAllocatedGpu) {
  state_.place(job(1, 2), {0, 1}, 0.0);
  // A scheduler proposing GPU 1 again would double-allocate it.
  const util::Status overlap =
      check::audit_placement(job(2, 2), std::vector<int>{1, 2}, state_);
  ASSERT_FALSE(overlap.is_ok());
  EXPECT_NE(overlap.error().message.find("already allocated to job 1"),
            std::string::npos);

  // Corrupted ownership table: GPU 3 silently stolen for job 1. The same
  // placement that would otherwise be feasible now fails the audit.
  state_.corrupt_gpu_owner_for_test(3, 1);
  const util::Status corrupted =
      check::audit_placement(job(2, 2), std::vector<int>{2, 3}, state_);
  ASSERT_FALSE(corrupted.is_ok());
  EXPECT_NE(corrupted.error().message.find("GPU 3"), std::string::npos);
}

TEST_F(ClusterAuditTest, StateAuditCatchesOwnershipCorruption) {
  state_.place(job(1, 2), {0, 1}, 0.0);
  state_.place(job(2, 2), {2, 3}, 0.0);
  ASSERT_TRUE(check::validate(state_).is_ok());

  // Double allocation: the owner table hands job 2's GPU to job 1.
  state_.corrupt_gpu_owner_for_test(2, 1);
  const util::Status status = check::validate(state_);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.error().message.find("GPU 2"), std::string::npos);

  state_.corrupt_gpu_owner_for_test(2, 2);  // repair
  ASSERT_TRUE(check::validate(state_).is_ok());

  // Phantom owner: a free GPU marked as held by a job that does not exist.
  state_.corrupt_gpu_owner_for_test(7, 99);
  const util::Status phantom = check::validate(state_);
  ASSERT_FALSE(phantom.is_ok());
  EXPECT_NE(phantom.error().message.find("no running job"),
            std::string::npos);
}

TEST_F(ClusterAuditTest, PlacementAuditEnforcesShapeAndConstraints) {
  // Wrong GPU count for the task graph.
  EXPECT_FALSE(
      check::audit_placement(job(1, 2), std::vector<int>{0}, state_).is_ok());
  // Duplicate GPU in the proposal.
  EXPECT_FALSE(
      check::audit_placement(job(1, 2), std::vector<int>{1, 1}, state_)
          .is_ok());
  // Out-of-range GPU id.
  EXPECT_FALSE(
      check::audit_placement(job(1, 2), std::vector<int>{0, 64}, state_)
          .is_ok());
  // Single-node job spanning both machines (GPUs 0-3 vs 4-7).
  JobRequest spanning = job(1, 2);
  ASSERT_TRUE(spanning.profile.single_node);
  EXPECT_FALSE(
      check::audit_placement(spanning, std::vector<int>{0, 4}, state_)
          .is_ok());
  // Anti-collocated job packed onto one machine.
  JobRequest spread = job(2, 2);
  spread.profile.single_node = false;
  spread.profile.anti_collocate = true;
  EXPECT_FALSE(check::audit_placement(spread, std::vector<int>{0, 1}, state_)
                   .is_ok());
  EXPECT_TRUE(check::audit_placement(spread, std::vector<int>{0, 4}, state_)
                  .is_ok());
}

// --- Driver self-audit wiring ---------------------------------------------

TEST(DriverSelfAudit, CleanRunPassesContinuousAudit) {
  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model{perf::CalibrationParams::paper_minsky()};
  std::vector<JobRequest> jobs;
  for (int id = 0; id < 6; ++id) {
    jobs.push_back(perf::make_profiled_dl(id, 0.5 * id, NeuralNet::kAlexNet,
                                          8, 1 + id % 2, 0.0, model, topology,
                                          50));
  }
  const auto scheduler = sched::make_scheduler(sched::Policy::kTopoAware);
  sched::DriverOptions options;
  options.self_audit = true;  // validate(ClusterState) after every event
  sched::Driver driver(topology, model, *scheduler, options);
  const sched::DriverReport report = driver.run(jobs);
  EXPECT_EQ(report.rejected_jobs, 0);
  EXPECT_GT(report.end_time, 0.0);
  int finished = 0;
  for (const cluster::JobRecord& record : report.recorder.records()) {
    if (record.finished()) ++finished;
  }
  EXPECT_EQ(finished, 6);
}

}  // namespace
}  // namespace gts
