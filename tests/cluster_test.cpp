#include <gtest/gtest.h>

#include "cluster/recorder.hpp"
#include "cluster/state.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"

namespace gts::cluster {
namespace {

using jobgraph::JobRequest;
using jobgraph::NeuralNet;

class ClusterStateTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  ClusterState state_{topo_, model_};

  JobRequest job(int id, int gpus, int batch = 1,
                 NeuralNet nn = NeuralNet::kAlexNet,
                 long long iterations = 100) {
    return perf::make_profiled_dl(id, 0.0, nn, batch, gpus, 0.0, model_,
                                  topo_, iterations);
  }
};

TEST_F(ClusterStateTest, InitiallyAllFree) {
  EXPECT_EQ(state_.free_gpu_count(), 4);
  EXPECT_EQ(state_.free_gpus(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(state_.running_job_count(), 0);
  EXPECT_DOUBLE_EQ(state_.fragmentation(), 1.0);
}

TEST_F(ClusterStateTest, PlaceAndRemoveRestoreState) {
  state_.place(job(1, 2), {0, 1}, 0.0);
  EXPECT_EQ(state_.free_gpu_count(), 2);
  EXPECT_FALSE(state_.gpu_free(0));
  EXPECT_EQ(state_.gpu_owner(0), 1);
  EXPECT_EQ(state_.running_job_count(), 1);
  EXPECT_DOUBLE_EQ(state_.fragmentation(), 0.5);

  state_.remove(1, 10.0);
  EXPECT_EQ(state_.free_gpu_count(), 4);
  EXPECT_TRUE(state_.gpu_free(0));
  EXPECT_EQ(state_.running_job_count(), 0);
  for (const int flows : state_.link_flows()) EXPECT_EQ(flows, 0);
}

TEST_F(ClusterStateTest, LinkFlowsRegisteredAlongPaths) {
  state_.place(job(1, 2), {0, 2}, 0.0);  // cross-socket pair
  const perf::LinkFlows& flows = state_.link_flows();
  int total = 0;
  for (const int f : flows) total += f;
  // The 0-2 path has 4 links (GPU0-S0, S0-M, M-S1, S1-GPU2).
  EXPECT_EQ(total, 4);
}

TEST_F(ClusterStateTest, FlowsExcludingRemovesOwnContribution) {
  state_.place(job(1, 2), {0, 2}, 0.0);
  const perf::LinkFlows without = state_.flows_excluding(1);
  for (const int f : without) EXPECT_EQ(f, 0);
}

TEST_F(ClusterStateTest, ProgressBanksAtCurrentRate) {
  state_.place(job(1, 1, 1, NeuralNet::kAlexNet, 1000), {0}, 0.0);
  const RunningJob* running = state_.find(1);
  ASSERT_NE(running, nullptr);
  const double rate = running->rate;
  EXPECT_GT(rate, 0.0);
  state_.bank_progress(10.0);
  EXPECT_NEAR(state_.find(1)->progress_iterations, rate * 10.0, 1e-9);
}

TEST_F(ClusterStateTest, RatesSlowWhenInterferingJobArrives) {
  state_.place(job(1, 1, 1), {0}, 0.0);
  const double solo_rate = state_.find(1)->rate;
  state_.place(job(2, 1, 1), {1}, 5.0);  // same socket: interference
  const double shared_rate = state_.find(1)->rate;
  EXPECT_LT(shared_rate, solo_rate);
  state_.remove(2, 10.0);
  EXPECT_NEAR(state_.find(1)->rate, solo_rate, 1e-12);
}

TEST_F(ClusterStateTest, NextCompletionAccountsForRateChanges) {
  // Solo: 100 iterations at 25 ms -> finishes at 2.5 s.
  state_.place(job(1, 1, 1, NeuralNet::kAlexNet, 100), {0}, 0.0);
  const auto first = state_.next_completion(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 1);
  EXPECT_NEAR(first->second, 100 * 0.0250, 0.01);

  // An interfering neighbor placed at t=1 stretches the remainder.
  state_.place(job(2, 1, 1, NeuralNet::kAlexNet, 10000), {1}, 1.0);
  const auto second = state_.next_completion(1.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, 1);
  EXPECT_GT(second->second, first->second);
}

TEST_F(ClusterStateTest, CoRunnersScopedByMachineAndSocket) {
  state_.place(job(1, 1, 1), {0}, 0.0);
  const std::vector<int> same_socket = {1};
  const std::vector<int> other_socket = {2};
  const auto near = state_.co_runners(same_socket, -1);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_TRUE(near[0].same_socket);
  const auto far = state_.co_runners(other_socket, -1);
  ASSERT_EQ(far.size(), 1u);
  EXPECT_FALSE(far[0].same_socket);
  // Excluding the job itself.
  EXPECT_TRUE(state_.co_runners(same_socket, 1).empty());
}

TEST_F(ClusterStateTest, FragmentationAfterHypothetical) {
  EXPECT_DOUBLE_EQ(state_.fragmentation_after(std::vector<int>{0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(state_.fragmentation_after(std::vector<int>{0, 2}), 0.5);
  EXPECT_DOUBLE_EQ(
      state_.fragmentation_after(std::vector<int>{0, 1, 2, 3}), 0.0);
}

TEST_F(ClusterStateTest, PredictIterationSeesContention) {
  const JobRequest candidate = job(9, 2, 1);
  const std::vector<int> pack = {0, 1};
  const double solo = state_.predict_iteration(candidate, pack).total_s;
  state_.place(job(1, 2, 1), {2, 3}, 0.0);
  const double contended = state_.predict_iteration(candidate, pack).total_s;
  EXPECT_GT(contended, solo);
}

TEST_F(ClusterStateTest, P2pFlagTracksPlacement) {
  state_.place(job(1, 2, 1), {0, 1}, 0.0);
  EXPECT_TRUE(state_.find(1)->p2p);
  state_.place(job(2, 2, 1), {2, 3}, 0.0);
  EXPECT_TRUE(state_.find(2)->p2p);
  state_.remove(1, 1.0);
  state_.remove(2, 1.0);
  state_.place(job(3, 2, 1), {0, 2}, 2.0);
  EXPECT_FALSE(state_.find(3)->p2p);
}

TEST_F(ClusterStateTest, MultiMachineFreeLists) {
  const topo::TopologyGraph cluster = topo::builders::cluster(
      2, topo::builders::MachineShape::kPower8Minsky);
  ClusterState state(cluster, model_);
  state.place(perf::make_profiled_dl(1, 0.0, NeuralNet::kAlexNet, 1, 2, 0.0,
                                     model_, cluster, 100),
              {4, 5}, 0.0);
  EXPECT_EQ(state.free_gpus_of_machine(0).size(), 4u);
  EXPECT_EQ(state.free_gpus_of_machine(1).size(), 2u);
  EXPECT_EQ(state.machines_of(std::vector<int>{0, 5}),
            (std::vector<int>{0, 1}));
}

// ------------------------------------------------------------ Recorder ----

TEST(RecorderTest, LifecycleAndDerivedMetrics) {
  Recorder recorder;
  JobRequest job = JobRequest::make_dl(1, 5.0, NeuralNet::kAlexNet, 1, 2, 0.5);
  job.profile.solo_time_pack = 100.0;
  recorder.on_submit(job);

  const JobRecord* record = recorder.find(1);
  ASSERT_NE(record, nullptr);
  EXPECT_FALSE(record->placed());

  recorder.on_place(1, 10.0, {0, 1}, 0.8, true);
  EXPECT_TRUE(recorder.find(1)->placed());
  EXPECT_DOUBLE_EQ(recorder.find(1)->waiting_time(), 5.0);
  EXPECT_FALSE(recorder.find(1)->slo_violated());

  recorder.on_finish(1, 130.0);
  const JobRecord& done = *recorder.find(1);
  EXPECT_DOUBLE_EQ(done.execution_time(), 120.0);
  EXPECT_NEAR(done.qos_slowdown(), 0.2, 1e-9);
  EXPECT_NEAR(done.qos_wait_slowdown(), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(recorder.makespan(), 130.0);
}

TEST(RecorderTest, SloViolationWhenPlacedBelowThreshold) {
  Recorder recorder;
  JobRequest job = JobRequest::make_dl(1, 0.0, NeuralNet::kAlexNet, 4, 2, 0.5);
  recorder.on_submit(job);
  recorder.on_place(1, 0.0, {0, 2}, 0.3, false);
  EXPECT_TRUE(recorder.find(1)->slo_violated());
  EXPECT_EQ(recorder.slo_violations(), 1);
}

TEST(RecorderTest, SortedSlowdownsDescend) {
  Recorder recorder;
  for (int id = 0; id < 3; ++id) {
    JobRequest job =
        JobRequest::make_dl(id, 0.0, NeuralNet::kAlexNet, 1, 1, 0.0);
    job.profile.solo_time_pack = 100.0;
    recorder.on_submit(job);
    recorder.on_place(id, 0.0, {0}, 1.0, true);
    recorder.on_finish(id, 100.0 + 10.0 * id);
  }
  const auto slowdowns = recorder.sorted_qos_slowdowns();
  ASSERT_EQ(slowdowns.size(), 3u);
  EXPECT_GE(slowdowns[0], slowdowns[1]);
  EXPECT_GE(slowdowns[1], slowdowns[2]);
  EXPECT_NEAR(slowdowns[0], 0.2, 1e-9);
}

TEST(RecorderTest, TimelineRendersJobs) {
  const topo::TopologyGraph topo = topo::builders::power8_minsky();
  Recorder recorder;
  JobRequest job = JobRequest::make_dl(7, 0.0, NeuralNet::kAlexNet, 1, 2, 0.0);
  job.profile.solo_time_pack = 10.0;
  recorder.on_submit(job);
  recorder.on_place(7, 0.0, {0, 1}, 1.0, true);
  recorder.on_finish(7, 10.0);
  const std::string timeline = recorder.render_timeline(topo, 10.0, 20);
  EXPECT_NE(timeline.find("GPU0"), std::string::npos);
  EXPECT_NE(timeline.find('7'), std::string::npos);  // job id glyph
}

TEST(RecorderTest, SampleSeries) {
  const topo::TopologyGraph topo = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  ClusterState state(topo, model);
  Recorder recorder;
  recorder.sample(state, 0.0);
  EXPECT_EQ(recorder.p2p_bandwidth().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.p2p_bandwidth()[0].value, 0.0);

  const JobRequest job = perf::make_profiled_dl(
      1, 0.0, NeuralNet::kAlexNet, 1, 2, 0.0, model, topo, 100);
  state.place(job, {0, 1}, 0.0, 0.9);
  recorder.on_submit(job);
  recorder.on_place(1, 0.0, {0, 1}, 0.9, true);
  recorder.sample(state, 1.0);
  EXPECT_GT(recorder.p2p_bandwidth()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(recorder.host_bandwidth()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(recorder.mean_utility()[1].value, 0.9);
}

}  // namespace
}  // namespace gts::cluster
