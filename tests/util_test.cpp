#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/expected.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace gts::util {
namespace {

// ---------------------------------------------------------------- RNG -----

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntBoundsRespected) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const long long v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double lambda = 0.5;
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.exponential(lambda);
  EXPECT_NEAR(total / kN, 1.0 / lambda, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(23);
  const double mean = 4.5;
  double total = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) total += rng.poisson(mean);
  EXPECT_NEAR(total / kN, mean, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  const double mean = 200.0;
  double total = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const int v = rng.poisson(mean);
    ASSERT_GE(v, 0);
    total += v;
  }
  EXPECT_NEAR(total / kN, mean, 2.0);
}

TEST(RngTest, BinomialMomentsMatch) {
  Rng rng(31);
  const int n = 3;
  const double p = 0.5;
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const int v = rng.binomial(n, p);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, n);
    total += v;
  }
  EXPECT_NEAR(total / kN, n * p, 0.02);
}

TEST(RngTest, BinomialEdgeProbabilities) {
  Rng rng(37);
  EXPECT_EQ(rng.binomial(5, 0.0), 0);
  EXPECT_EQ(rng.binomial(5, 1.0), 5);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(41);
  double total = 0.0;
  double total_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(10.0, 2.0);
    total += v;
    total_sq += v * v;
  }
  const double mean = total / kN;
  const double variance = total_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng root(99);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

// ------------------------------------------------------------ strings -----

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsRuns) {
  const auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringsTest, ParseIntStrict) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int(" 13 ").value(), 13);
  EXPECT_FALSE(parse_int("13x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(parse_double("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3").value(), -2000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5garbage").has_value());
}

TEST(StringsTest, FmtSubstitutesPlaceholders) {
  EXPECT_EQ(fmt("a={} b={}", 1, 2.5), "a=1 b=2.5");
  EXPECT_EQ(fmt("no placeholders"), "no placeholders");
  EXPECT_EQ(fmt("{} tail", "x"), "x tail");
}

TEST(StringsTest, FormatDoublePrecision) {
  EXPECT_EQ(format_double(1.299, 2), "1.30");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StringsTest, JoinAndCase) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("AlexNet"), "alexnet");
  EXPECT_TRUE(starts_with("GPU0", "GPU"));
  EXPECT_FALSE(starts_with("GP", "GPU"));
}

// ----------------------------------------------------------- Expected -----

TEST(ExpectedTest, ValueAccess) {
  Expected<int> ok(5);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.value_or(9), 5);
}

TEST(ExpectedTest, ErrorAccess) {
  Expected<int> bad(Error{"boom"});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.value_or(9), 9);
  EXPECT_THROW(bad.value(), BadExpectedAccess);
}

TEST(ExpectedTest, MapPropagates) {
  Expected<int> ok(5);
  const auto doubled = ok.map([](int v) { return v * 2; });
  EXPECT_EQ(doubled.value(), 10);
  Expected<int> bad(Error{"x"});
  const auto still_bad = bad.map([](int v) { return v * 2; });
  EXPECT_FALSE(still_bad.has_value());
}

TEST(ExpectedTest, ErrorContextChains) {
  const Error e = Error{"inner"}.with_context("outer");
  EXPECT_EQ(e.message, "outer: inner");
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status bad = Error{"nope"};
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.error().message, "nope");
}

// ---------------------------------------------------------------- CLI -----

TEST(CliTest, ParsesOptionsAndFlags) {
  CliParser cli;
  cli.add_option("machines", "machine count", "5");
  cli.add_option("policy", "scheduler policy");
  cli.add_flag("verbose", "noisy output");
  const char* argv[] = {"prog", "--machines", "10", "--policy=topo",
                        "--verbose", "positional"};
  ASSERT_TRUE(cli.parse(6, argv).is_ok());
  EXPECT_EQ(cli.get_int("machines"), 10);
  EXPECT_EQ(cli.get("policy"), "topo");
  EXPECT_TRUE(cli.has("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(CliTest, DefaultsApply) {
  CliParser cli;
  cli.add_option("machines", "machine count", "5");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv).is_ok());
  EXPECT_EQ(cli.get_int("machines"), 5);
  EXPECT_TRUE(cli.has("machines"));
}

TEST(CliTest, UnknownOptionFails) {
  CliParser cli;
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(cli.parse(3, argv).is_ok());
}

TEST(CliTest, MissingValueFails) {
  CliParser cli;
  cli.add_option("x", "x value");
  const char* argv[] = {"prog", "--x"};
  EXPECT_FALSE(cli.parse(2, argv).is_ok());
}

TEST(CliTest, FlagWithValueFails) {
  CliParser cli;
  cli.add_flag("v", "flag");
  const char* argv[] = {"prog", "--v=1"};
  EXPECT_FALSE(cli.parse(2, argv).is_ok());
}

TEST(CliTest, UsageListsOptions) {
  CliParser cli;
  cli.add_option("machines", "machine count", "5");
  cli.add_flag("verbose", "noisy");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--machines"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
}

// ---------------------------------------------------------------- log -----

TEST(LogTest, LevelFilter) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(original);
}

TEST(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace gts::util
