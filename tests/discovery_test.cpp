#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/discovery.hpp"

namespace gts::topo::discovery {
namespace {

// Synthetic fixtures mirroring the S822LC tool outputs (Section 5.1).
constexpr const char* kMinskyMatrix = R"(	GPU0	GPU1	GPU2	GPU3	CPU Affinity
GPU0	 X 	NV2	SYS	SYS	0-7
GPU1	NV2	 X 	SYS	SYS	0-7
GPU2	SYS	SYS	 X 	NV2	8-15
GPU3	SYS	SYS	NV2	 X 	8-15

Legend:
  X   = Self
  SYS = Connection traversing PCIe as well as the SMP link between NUMA nodes
  NV# = Connection traversing a bonded set of # NVLinks
)";

constexpr const char* kMinskyNumactl = R"(available: 2 nodes (0-1)
node 0 cpus: 0 1 2 3 4 5 6 7
node 0 size: 261788 MB
node 1 cpus: 8 9 10 11 12 13 14 15
node 1 size: 261788 MB
node distances:
node   0   1
  0:  10  40
  1:  40  10
)";

constexpr const char* kPcieSwitchMatrix = R"(	GPU0	GPU1	GPU2	GPU3	CPU Affinity
GPU0	 X 	PIX	SYS	SYS	0-7
GPU1	PIX	 X 	SYS	SYS	0-7
GPU2	SYS	SYS	 X 	PIX	8-15
GPU3	SYS	SYS	PIX	 X 	8-15
)";

TEST(ParseMatrixTest, ParsesMinskyFixture) {
  const auto matrix = parse_matrix(kMinskyMatrix);
  ASSERT_TRUE(matrix.has_value());
  ASSERT_EQ(matrix->rows.size(), 4u);
  EXPECT_EQ(matrix->rows[0].gpu_name, "GPU0");
  EXPECT_EQ(matrix->rows[0].cells[1], "NV2");
  EXPECT_EQ(matrix->rows[0].cells[2], "SYS");
  EXPECT_EQ(matrix->rows[0].cpu_affinity_begin, 0);
  EXPECT_EQ(matrix->rows[0].cpu_affinity_end, 7);
  EXPECT_EQ(matrix->rows[3].cpu_affinity_begin, 8);
}

TEST(ParseMatrixTest, RejectsEmptyAndRagged) {
  EXPECT_FALSE(parse_matrix("").has_value());
  EXPECT_FALSE(parse_matrix("Legend: nothing here").has_value());
  constexpr const char* kRagged =
      "GPU0\t X \tNV2\t0-7\nGPU1\tNV2\t X \tSYS\t0-7\n";
  EXPECT_FALSE(parse_matrix(kRagged).has_value());
}

TEST(ParseNumactlTest, ParsesNodes) {
  const auto layout = parse_numactl(kMinskyNumactl);
  ASSERT_TRUE(layout.has_value());
  ASSERT_EQ(layout->cpus_of_node.size(), 2u);
  EXPECT_EQ(layout->cpus_of_node[0].size(), 8u);
  EXPECT_EQ(layout->cpus_of_node[0][0], 0);
  EXPECT_EQ(layout->cpus_of_node[1][0], 8);
}

TEST(ParseNumactlTest, RejectsGarbage) {
  EXPECT_FALSE(parse_numactl("no numa info").has_value());
}

TEST(BuildMachineTest, MinskyMatchesBuilder) {
  const auto discovered = build_machine(kMinskyMatrix, kMinskyNumactl);
  ASSERT_TRUE(discovered.has_value()) << discovered.error().message;

  const TopologyGraph reference = builders::power8_minsky();
  EXPECT_EQ(discovered->gpu_count(), reference.gpu_count());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(discovered->socket_of_gpu(i), reference.socket_of_gpu(i));
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_EQ(discovered->gpu_path(i, j).peer_to_peer,
                reference.gpu_path(i, j).peer_to_peer)
          << "pair " << i << "," << j;
      EXPECT_DOUBLE_EQ(discovered->gpu_distance(i, j),
                       reference.gpu_distance(i, j))
          << "pair " << i << "," << j;
    }
  }
  // NVLink lane count becomes bandwidth: NV2 = 40 GB/s.
  EXPECT_DOUBLE_EQ(discovered->gpu_path(0, 1).bottleneck_gbps, 40.0);
}

TEST(BuildMachineTest, PixPairsShareASwitch) {
  const auto discovered = build_machine(kPcieSwitchMatrix, kMinskyNumactl);
  ASSERT_TRUE(discovered.has_value()) << discovered.error().message;
  // PIX pair: GPU -> switch -> GPU, distance 2, still P2P (switch-only).
  EXPECT_DOUBLE_EQ(discovered->gpu_distance(0, 1), 2.0);
  EXPECT_TRUE(discovered->gpu_path(0, 1).peer_to_peer);
  EXPECT_FALSE(discovered->gpu_path(0, 2).peer_to_peer);
}

TEST(BuildMachineTest, FailsOnMissingAffinity) {
  constexpr const char* kNoAffinity =
      "GPU0\t X \tNV2\nGPU1\tNV2\t X \n";
  EXPECT_FALSE(build_machine(kNoAffinity, kMinskyNumactl).has_value());
}

TEST(RenderMatrixTest, RoundTripsThroughParser) {
  const TopologyGraph reference = builders::power8_minsky();
  const std::string rendered = render_matrix(reference);
  EXPECT_NE(rendered.find("NV2"), std::string::npos);
  EXPECT_NE(rendered.find("SYS"), std::string::npos);

  const auto reparsed = build_machine(rendered, kMinskyNumactl);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(reparsed->gpu_distance(i, j),
                       reference.gpu_distance(i, j));
    }
  }
}

TEST(RenderMatrixTest, Dgx1ShowsPixForSwitchPairs) {
  const TopologyGraph g = builders::dgx1();
  const std::string rendered = render_matrix(g);
  EXPECT_NE(rendered.find("NV1"), std::string::npos);
}

}  // namespace
}  // namespace gts::topo::discovery
