// Seeded equivalence suite for the decision-path performance work: every
// hot-path rewrite ships with the original implementation as an oracle and
// is pinned to it here.
//
//   * bucket-list FM == the std::set reference, side-for-side, on 200
//     random graphs x 8 seeds (plus degenerate shapes), with one FmScratch
//     arena reused across all calls and hammered from multiple threads;
//   * TaskUtility's incremental side aggregates == recomputing every
//     factor from scratch, to 1e-9, across random bipartitions of a live
//     cluster;
//   * the hashed placement-cache key == the legacy byte-string key,
//     decision-for-decision, on the seeded 500-job regression trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "cluster/recorder.hpp"
#include "partition/drb.hpp"
#include "partition/fm.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "sched/driver.hpp"
#include "sched/task_utility.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace gts {
namespace {

using topo::builders::MachineShape;

// --- bucket-list FM vs. the totally-ordered-set oracle ---------------------

partition::FmGraph random_fm_graph(int vertices, double density,
                                   util::Rng& rng) {
  partition::FmGraph graph;
  graph.vertex_count = vertices;
  for (int i = 0; i < vertices; ++i) {
    for (int j = i + 1; j < vertices; ++j) {
      if (rng.uniform() < density) {
        graph.edges.push_back({i, j, rng.uniform(0.0, 5.0)});
      }
    }
  }
  return graph;
}

std::vector<int> random_initial(int vertices, util::Rng& rng) {
  // Alternating split, shuffled: both sides always non-empty for
  // vertices >= 2, with seed-dependent membership.
  std::vector<int> initial(static_cast<size_t>(vertices));
  for (int v = 0; v < vertices; ++v) {
    initial[static_cast<size_t>(v)] = v % 2;
  }
  for (int v = vertices - 1; v > 0; --v) {
    const int swap_with = static_cast<int>(rng.uniform_int(v + 1));
    std::swap(initial[static_cast<size_t>(v)],
              initial[static_cast<size_t>(swap_with)]);
  }
  return initial;
}

void expect_same_result(const partition::FmResult& bucket,
                        const partition::FmResult& reference,
                        const std::string& context) {
  EXPECT_EQ(bucket.side, reference.side) << context;
  EXPECT_DOUBLE_EQ(bucket.cut_weight, reference.cut_weight) << context;
  EXPECT_EQ(bucket.passes, reference.passes) << context;
  EXPECT_DOUBLE_EQ(bucket.initial_cut, reference.initial_cut) << context;
}

// The ISSUE's headline FM property: 200 random graphs x 8 seeds, the
// bucket-list implementation and the set-ordered reference agree on the
// side vectors, the cut and the pass count — with a single scratch arena
// reused across all 1600 calls.
TEST(FmBucketListTest, MatchesReferenceOn200RandomGraphsTimes8Seeds) {
  partition::FmScratch scratch;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    for (int graph_index = 0; graph_index < 200; ++graph_index) {
      const int vertices = 2 + static_cast<int>(rng.uniform_int(30));
      const double density = rng.uniform(0.1, 1.0);
      const partition::FmGraph graph =
          random_fm_graph(vertices, density, rng);
      const std::vector<int> initial = random_initial(vertices, rng);

      partition::FmOptions options;
      if (graph_index % 3 == 1) options.max_side_fraction = 0.75;
      if (graph_index % 5 == 2) options.min_side = 2;

      const partition::FmResult bucket =
          partition::fm_bipartition(graph, initial, options, &scratch);
      const partition::FmResult reference =
          partition::fm_bipartition_reference(graph, initial, options);
      expect_same_result(bucket, reference,
                         "seed " + std::to_string(seed) + " graph " +
                             std::to_string(graph_index));
    }
  }
}

// Degenerate shapes: empty edge lists, two vertices, all-zero weights,
// equal-gain ties everywhere (uniform weights on a complete graph), and a
// single vertex per side under min_side.
TEST(FmBucketListTest, MatchesReferenceOnDegenerateGraphs) {
  partition::FmScratch scratch;

  partition::FmGraph no_edges;
  no_edges.vertex_count = 6;
  partition::FmGraph pair;
  pair.vertex_count = 2;
  pair.edges.push_back({0, 1, 3.0});
  partition::FmGraph zero_weights;
  zero_weights.vertex_count = 5;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) zero_weights.edges.push_back({i, j, 0.0});
  }
  partition::FmGraph uniform;  // every move gain ties with every other
  uniform.vertex_count = 8;
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) uniform.edges.push_back({i, j, 1.0});
  }

  int case_index = 0;
  for (const partition::FmGraph* graph :
       {&no_edges, &pair, &zero_weights, &uniform}) {
    std::vector<int> initial(static_cast<size_t>(graph->vertex_count));
    for (int v = 0; v < graph->vertex_count; ++v) {
      initial[static_cast<size_t>(v)] = v % 2;
    }
    for (const partition::FmOptions& options :
         {partition::FmOptions{}, partition::FmOptions{8, 1, 0.5}}) {
      expect_same_result(
          partition::fm_bipartition(*graph, initial, options, &scratch),
          partition::fm_bipartition_reference(*graph, initial, options),
          "degenerate case " + std::to_string(case_index));
    }
    ++case_index;
  }
}

// The race surface TSan watches (CI bench-smoke job): concurrent FM calls
// must be independent, both with explicit per-thread scratch arenas and
// with the nullptr thread-local fallback.
TEST(FmBucketListTest, ConcurrentScratchReuseIsRaceFree) {
  constexpr int kThreads = 4;
  constexpr int kGraphsPerThread = 40;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int thread_index = 0; thread_index < kThreads; ++thread_index) {
    workers.emplace_back([thread_index] {
      partition::FmScratch scratch;
      util::Rng rng(1000 + static_cast<std::uint64_t>(thread_index));
      for (int i = 0; i < kGraphsPerThread; ++i) {
        const int vertices = 2 + static_cast<int>(rng.uniform_int(24));
        const partition::FmGraph graph =
            random_fm_graph(vertices, 0.5, rng);
        const std::vector<int> initial = random_initial(vertices, rng);
        // Alternate explicit arena reuse and the thread-local fallback.
        partition::FmScratch* arena = i % 2 == 0 ? &scratch : nullptr;
        const partition::FmResult bucket =
            partition::fm_bipartition(graph, initial, {}, arena);
        const partition::FmResult reference =
            partition::fm_bipartition_reference(graph, initial, {});
        ASSERT_EQ(bucket.side, reference.side);
        ASSERT_DOUBLE_EQ(bucket.cut_weight, reference.cut_weight);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

// --- incremental TaskUtility aggregates vs. recompute-from-scratch ---------

/// A cluster with enough running jobs that interference and fragmentation
/// terms are non-trivial for later candidates.
struct LiveCluster {
  topo::TopologyGraph topology;
  perf::DlWorkloadModel model;
  cluster::ClusterState state;
  std::vector<jobgraph::JobRequest> requests;

  LiveCluster()
      : topology(topo::builders::cluster(4, MachineShape::kPower8Minsky)),
        model(perf::CalibrationParams::paper_minsky()),
        state(topology, model) {
    trace::GeneratorOptions options;
    options.job_count = 24;
    options.seed = 20260806;
    requests = trace::generate_workload(options, model, topology);
    sched::TopoAwareScheduler scheduler({}, /*postpone=*/false);
    for (const jobgraph::JobRequest& request : requests) {
      // Keep at least 8 GPUs free so the bipartition tests have room.
      if (state.free_gpu_count() <= 8 + request.num_gpus) continue;
      const auto placement = scheduler.place(request, state);
      if (!placement) continue;
      state.place(request, placement->gpus, /*now=*/0.0, placement->utility);
    }
    EXPECT_GT(state.running_job_count(), 0);
  }
};

TEST(TaskUtilityIncrementalTest, MatchesScratchRecomputeOnRandomBipartitions) {
  LiveCluster cluster;
  const sched::UtilityModel model{sched::UtilityWeights{}};
  util::Rng rng(77);

  const std::vector<int> free = cluster.state.free_gpus();
  ASSERT_GE(free.size(), 4u);

  for (int trial = 0; trial < 50; ++trial) {
    const jobgraph::JobRequest& request =
        cluster.requests[static_cast<size_t>(trial) %
                         cluster.requests.size()];
    const int task_count = request.comm_graph.task_count();

    // A random bipartition of a random subset of the free GPUs.
    std::vector<int> pool = free;
    for (size_t i = pool.size() - 1; i > 0; --i) {
      std::swap(pool[i], pool[rng.uniform_int(i + 1)]);
    }
    const size_t use = 2 + rng.uniform_int(pool.size() - 1);
    const size_t split = 1 + rng.uniform_int(use - 1);
    std::vector<int> gpus0(pool.begin(), pool.begin() + split);
    std::vector<int> gpus1(pool.begin() + split, pool.begin() + use);
    std::sort(gpus0.begin(), gpus0.end());
    std::sort(gpus1.begin(), gpus1.end());

    // Route a random prefix of the tasks to alternating sides.
    std::vector<int> tasks0;
    std::vector<int> tasks1;
    const int routed = static_cast<int>(rng.uniform_int(task_count));
    for (int task = 0; task < routed; ++task) {
      (task % 2 == 0 ? tasks0 : tasks1).push_back(task);
    }
    const partition::BipartitionView view{gpus0, gpus1, tasks0, tasks1};

    const sched::TaskUtility incremental(request, cluster.state, model,
                                         /*incremental=*/true);
    const sched::TaskUtility scratch(request, cluster.state, model,
                                     /*incremental=*/false);
    incremental.begin_bipartition(gpus0, gpus1);
    scratch.begin_bipartition(gpus0, gpus1);

    for (int task = routed; task < task_count; ++task) {
      for (const int side : {0, 1}) {
        const double fast = incremental.task_utility(task, side, view);
        const double slow = scratch.task_utility(task, side, view);
        EXPECT_NEAR(fast, slow, 1e-9)
            << "trial " << trial << " task " << task << " side " << side;
      }
    }
  }
}

// Consecutive bipartitions with swapped and reused side vectors: the
// per-side caches must track the begin_bipartition marks, never serving
// aggregates computed for a previous pair of GPU sets.
TEST(TaskUtilityIncrementalTest, CacheInvalidatesAcrossBipartitions) {
  LiveCluster cluster;
  const sched::UtilityModel model{sched::UtilityWeights{}};
  const jobgraph::JobRequest& request = cluster.requests.front();
  const int task_count = request.comm_graph.task_count();
  ASSERT_GE(task_count, 2);

  const std::vector<int> free = cluster.state.free_gpus();
  ASSERT_GE(free.size(), 6u);
  std::vector<int> a(free.begin(), free.begin() + 2);
  std::vector<int> b(free.begin() + 2, free.begin() + 4);
  std::vector<int> c(free.begin() + 4, free.begin() + 6);
  const std::vector<int> no_tasks;
  const partition::BipartitionView ab{a, b, no_tasks, no_tasks};
  const partition::BipartitionView ba{b, a, no_tasks, no_tasks};
  const partition::BipartitionView ac{a, c, no_tasks, no_tasks};

  const sched::TaskUtility incremental(request, cluster.state, model, true);
  const sched::TaskUtility scratch(request, cluster.state, model, false);

  for (const auto* step :
       {&ab, &ba, &ac, &ab, &ab, &ac, &ba}) {
    incremental.begin_bipartition(step->gpus0, step->gpus1);
    scratch.begin_bipartition(step->gpus0, step->gpus1);
    for (int task = 0; task < task_count; ++task) {
      for (const int side : {0, 1}) {
        EXPECT_NEAR(incremental.task_utility(task, side, *step),
                    scratch.task_utility(task, side, *step), 1e-9);
      }
    }
  }
}

// --- hashed cache key vs. the legacy byte-string key -----------------------

std::vector<jobgraph::JobRequest> seeded_trace(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    int jobs, std::uint64_t seed) {
  trace::GeneratorOptions options;
  options.job_count = jobs;
  options.seed = seed;
  return trace::generate_workload(options, model, topology);
}

sched::DriverReport run_trace(const topo::TopologyGraph& topology,
                              const perf::DlWorkloadModel& model,
                              sched::TopoAwareScheduler& scheduler,
                              const std::vector<jobgraph::JobRequest>& jobs) {
  sched::DriverOptions options;
  options.record_series = false;
  sched::Driver driver(topology, model, scheduler, options);
  return driver.run(jobs);
}

void expect_identical_records(const cluster::Recorder& hashed,
                              const cluster::Recorder& string_keyed) {
  ASSERT_EQ(hashed.records().size(), string_keyed.records().size());
  for (size_t i = 0; i < hashed.records().size(); ++i) {
    const cluster::JobRecord& a = hashed.records()[i];
    const cluster::JobRecord& b = string_keyed.records()[i];
    EXPECT_EQ(a.id, b.id) << "record " << i;
    EXPECT_EQ(a.gpus, b.gpus) << "record " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << "record " << i;
    EXPECT_DOUBLE_EQ(a.end, b.end) << "record " << i;
    EXPECT_DOUBLE_EQ(a.placement_utility, b.placement_utility)
        << "record " << i;
    EXPECT_EQ(a.p2p, b.p2p) << "record " << i;
  }
}

// The 128-bit FNV-1a key plus equality payload must reproduce the string
// key's decisions exactly on the seeded 500-job regression trace — same
// GPUs, times and utilities job by job, same hit statistics, for both
// postponement modes.
TEST(HashedCacheKeyTest, MatchesStringKeyDecisionsOn500JobTrace) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(5, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 500, /*seed=*/20260806);

  for (const bool postpone : {false, true}) {
    sched::TopoAwareScheduler hashed({}, postpone);
    const sched::DriverReport hashed_report =
        run_trace(topology, model, hashed, jobs);

    sched::TopoAwareScheduler string_keyed({}, postpone);
    string_keyed.set_string_cache_keys_for_test(true);
    const sched::DriverReport string_report =
        run_trace(topology, model, string_keyed, jobs);

    ASSERT_EQ(hashed_report.recorder.records().size(), 500u);
    expect_identical_records(hashed_report.recorder, string_report.recorder);
    EXPECT_EQ(hashed_report.recorder.slo_violations(),
              string_report.recorder.slo_violations());

    // Both key schemes must see the same cache traffic: same lookups and
    // the same hits (a diverging hit count would mean a collision or a
    // dropped field in one of the keys).
    EXPECT_EQ(hashed.cache_stats().lookups,
              string_keyed.cache_stats().lookups)
        << "postpone=" << postpone;
    EXPECT_EQ(hashed.cache_stats().hits, string_keyed.cache_stats().hits)
        << "postpone=" << postpone;
    if (postpone) {
      EXPECT_GT(hashed.cache_stats().hits, 0);
    }
  }
}

}  // namespace
}  // namespace gts
