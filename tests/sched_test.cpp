#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/state.hpp"
#include "perf/profile.hpp"
#include "sched/greedy.hpp"
#include "sched/scheduler.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"

namespace gts::sched {
namespace {

using jobgraph::JobRequest;
using jobgraph::NeuralNet;
using topo::builders::MachineShape;

class SchedTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  cluster::ClusterState state_{topo_, model_};

  JobRequest job(int id, int gpus, int batch = 1, double min_utility = 0.5) {
    return perf::make_profiled_dl(id, 0.0, NeuralNet::kAlexNet, batch, gpus,
                                  min_utility, model_, topo_, 700);
  }
};

// ---------------------------------------------------------------- FCFS ----

TEST_F(SchedTest, FcfsTakesLowestFreeIds) {
  FcfsScheduler fcfs;
  const auto placement = fcfs.place(job(1, 2), state_);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->gpus, (std::vector<int>{0, 1}));
  EXPECT_TRUE(fcfs.blocking_queue());
}

TEST_F(SchedTest, FcfsSkipsBusyGpus) {
  state_.place(job(9, 1), {0}, 0.0);
  FcfsScheduler fcfs;
  const auto placement = fcfs.place(job(1, 2), state_);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->gpus, (std::vector<int>{1, 2}));
}

TEST_F(SchedTest, FcfsDeclinesWhenInsufficient) {
  state_.place(job(9, 2), {0, 1}, 0.0);
  state_.place(job(8, 1), {2}, 0.0);
  FcfsScheduler fcfs;
  EXPECT_FALSE(fcfs.place(job(1, 2), state_).has_value());
}

// ------------------------------------------------------------- BestFit ----

TEST_F(SchedTest, BestFitPrefersTightestMachine) {
  const topo::TopologyGraph cluster =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  cluster::ClusterState state(cluster, model_);
  // Machine 0 has 1 GPU free, machine 1 fully free.
  state.place(perf::make_profiled_dl(9, 0.0, NeuralNet::kAlexNet, 1, 3, 0.0,
                                     model_, cluster, 700),
              {0, 1, 2}, 0.0);
  BestFitScheduler bf;
  const auto placement = bf.place(
      perf::make_profiled_dl(1, 0.0, NeuralNet::kAlexNet, 1, 1, 0.0, model_,
                             cluster, 700),
      state);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->gpus, (std::vector<int>{3}));  // the tight machine
}

TEST_F(SchedTest, BestFitPacksUsedSocketsFirst) {
  state_.place(job(9, 1), {0}, 0.0);  // socket 0 half-used
  BestFitScheduler bf;
  const auto placement = bf.place(job(1, 1), state_);
  ASSERT_TRUE(placement.has_value());
  // Socket 0 (fewest free) is chosen over empty socket 1.
  EXPECT_EQ(placement->gpus, (std::vector<int>{1}));
}

// ------------------------------------------------------- filter_hosts -----

TEST_F(SchedTest, FilterHostsSingleNode) {
  const topo::TopologyGraph cluster =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  cluster::ClusterState state(cluster, model_);
  // Machine 0: 1 free; machine 1: 4 free.
  state.place(perf::make_profiled_dl(9, 0.0, NeuralNet::kAlexNet, 1, 3, 0.0,
                                     model_, cluster, 700),
              {0, 1, 2}, 0.0);
  JobRequest j = perf::make_profiled_dl(1, 0.0, NeuralNet::kAlexNet, 1, 2,
                                        0.5, model_, cluster, 700);
  const std::vector<int> hosts = filter_hosts(j, state);
  // Only machine 1 can host 2 GPUs.
  EXPECT_EQ(hosts, (std::vector<int>{4, 5, 6, 7}));
}

TEST_F(SchedTest, FilterHostsAntiCollocate) {
  const topo::TopologyGraph cluster =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  cluster::ClusterState state(cluster, model_);
  JobRequest j = perf::make_profiled_dl(1, 0.0, NeuralNet::kAlexNet, 1, 3,
                                        0.5, model_, cluster, 700);
  j.profile.anti_collocate = true;
  // 3 tasks on 2 machines: impossible.
  EXPECT_TRUE(filter_hosts(j, state).empty());
  j.num_gpus = 2;
  j.comm_graph = jobgraph::JobGraph::all_to_all(2, 4.0);
  EXPECT_EQ(filter_hosts(j, state).size(), 8u);
}

// ---------------------------------------------------------- TOPO-AWARE ----

TEST_F(SchedTest, TopoAwarePacksCommunicatingJob) {
  TopoAwareScheduler topo_aware({}, /*postpone=*/false);
  const auto placement = topo_aware.place(job(1, 2, 1), state_);
  ASSERT_TRUE(placement.has_value());
  EXPECT_TRUE(topo_.same_socket(placement->gpus[0], placement->gpus[1]));
  EXPECT_GE(placement->utility, 0.5);
  EXPECT_TRUE(placement->satisfied);
}

TEST_F(SchedTest, TopoAwareAvoidsInterferingSocketForSingleGpuJob) {
  // Paper, Section 5.2.2: TOPO-AWARE-P places Job 1 on a different socket
  // than Job 0 because the profile predicts interference.
  state_.place(job(0, 1, 1), {0}, 0.0);
  TopoAwareScheduler topo_aware({}, /*postpone=*/true);
  const auto placement = topo_aware.place(
      perf::make_profiled_dl(1, 0.0, NeuralNet::kGoogLeNet, 4, 1, 0.3,
                             model_, topo_, 700),
      state_);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(topo_.socket_of_gpu(placement->gpus[0]), 1)
      << "expected placement away from Job 0's socket";
}

TEST_F(SchedTest, TopoAwarePlacesSpreadWhenNothingElseFree) {
  // Only one GPU free per socket: TOPO-AWARE (non-postponing) places the
  // communicating job across sockets anyway.
  state_.place(job(8, 1), {1}, 0.0);
  state_.place(job(9, 1), {3}, 0.0);
  TopoAwareScheduler topo_aware({}, /*postpone=*/false);
  const auto placement = topo_aware.place(job(1, 2, 4), state_);
  ASSERT_TRUE(placement.has_value());
  EXPECT_FALSE(topo_.same_socket(placement->gpus[0], placement->gpus[1]));
  EXPECT_FALSE(placement->satisfied);  // below the 0.5 threshold
}

TEST_F(SchedTest, TopoAwarePPostponesUnsatisfiedPlacement) {
  state_.place(job(8, 1), {1}, 0.0);
  state_.place(job(9, 1), {3}, 0.0);
  TopoAwareScheduler topo_aware_p({}, /*postpone=*/true);
  EXPECT_FALSE(topo_aware_p.place(job(1, 2, 4), state_).has_value());
}

TEST_F(SchedTest, TopoAwarePPlacesOnceSocketFreesUp) {
  state_.place(job(9, 1), {3}, 0.0);  // socket 1 half-used; socket 0 free
  TopoAwareScheduler topo_aware_p({}, /*postpone=*/true);
  const auto placement = topo_aware_p.place(job(1, 2, 4), state_);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(topo_.socket_of_gpu(placement->gpus[0]), 0);
  EXPECT_EQ(topo_.socket_of_gpu(placement->gpus[1]), 0);
}

TEST_F(SchedTest, TopoAwareDeclinesWhenNoCapacity) {
  state_.place(job(9, 4), {0, 1, 2, 3}, 0.0);
  TopoAwareScheduler topo_aware({}, /*postpone=*/false);
  EXPECT_FALSE(topo_aware.place(job(1, 1), state_).has_value());
}

TEST_F(SchedTest, TopoAwareStatsAccumulate) {
  TopoAwareScheduler topo_aware({}, /*postpone=*/false);
  (void)topo_aware.place(job(1, 2), state_);
  EXPECT_GT(topo_aware.drb_stats().bipartitions, 0);
}

// --------------------------------------- Section 4.3 bandwidth constraint --

TEST_F(SchedTest, ProfiledJobsCarryBandwidthDemand) {
  const JobRequest j = job(1, 2, 1);
  // A tiny-batch 2-GPU AlexNet pushes ~27 GB/s of link traffic.
  EXPECT_GT(j.profile.host_bw_demand_gbps, 10.0);
  EXPECT_LT(j.profile.host_bw_demand_gbps, 60.0);
}

TEST_F(SchedTest, FilterHostsEnforcesBandwidthCapacity) {
  // A running job consuming nearly all host bandwidth blocks further
  // high-demand jobs even though GPUs are free (t_bw <= p_bw).
  JobRequest hog = job(9, 1, 64);
  hog.profile.host_bw_demand_gbps =
      model_.params().host_bw_capacity_gbps - 5.0;
  state_.place(hog, {0}, 0.0);
  EXPECT_NEAR(state_.host_bw_used(0),
              model_.params().host_bw_capacity_gbps - 5.0, 1e-9);

  JobRequest wants_bandwidth = job(1, 2, 1);  // demands ~27 GB/s
  EXPECT_TRUE(filter_hosts(wants_bandwidth, state_).empty());

  JobRequest frugal = job(2, 1, 64);
  frugal.profile.host_bw_demand_gbps = 1.0;
  EXPECT_FALSE(filter_hosts(frugal, state_).empty());

  // Bandwidth frees with the job.
  state_.remove(9, 1.0);
  EXPECT_NEAR(state_.host_bw_used(0), 0.0, 1e-9);
  EXPECT_FALSE(filter_hosts(wants_bandwidth, state_).empty());
}

TEST_F(SchedTest, TopoAwareFastPathHonorsBandwidth) {
  const topo::TopologyGraph cluster =
      topo::builders::cluster(6, MachineShape::kPower8Minsky);
  cluster::ClusterState state(cluster, model_);
  // Saturate machines 0..4; only machine 5 has bandwidth headroom.
  for (int machine = 0; machine < 5; ++machine) {
    JobRequest hog = perf::make_profiled_dl(
        100 + machine, 0.0, NeuralNet::kAlexNet, 64, 1, 0.0, model_, cluster,
        700);
    hog.profile.host_bw_demand_gbps =
        model_.params().host_bw_capacity_gbps - 1.0;
    state.place(hog, {cluster.gpus_of_machine(machine)[0]}, 0.0);
  }
  const JobRequest j = perf::make_profiled_dl(
      1, 0.0, NeuralNet::kAlexNet, 1, 2, 0.5, model_, cluster, 700);
  TopoAwareScheduler scheduler({}, /*postpone=*/false);
  const auto placement = scheduler.place(j, state);
  ASSERT_TRUE(placement.has_value());
  for (const int gpu : placement->gpus) {
    EXPECT_EQ(cluster.machine_of_gpu(gpu), 5);
  }
}

// ------------------------------------------------------------- factory ----

TEST(SchedulerFactoryTest, MakesAllPolicies) {
  for (const Policy policy : {Policy::kFcfs, Policy::kBestFit,
                              Policy::kTopoAware, Policy::kTopoAwareP}) {
    const auto scheduler = make_scheduler(policy);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), to_string(policy));
  }
}

}  // namespace
}  // namespace gts::sched
