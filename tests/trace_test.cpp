#include <gtest/gtest.h>

#include <cstdio>

#include "exp/scenarios.hpp"
#include "trace/generator.hpp"
#include "trace/tracefile.hpp"
#include "topo/builders.hpp"

namespace gts::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
};

TEST_F(TraceTest, GeneratorProducesRequestedCount) {
  GeneratorOptions options;
  options.job_count = 50;
  const auto jobs = generate_workload(options, model_, topo_);
  ASSERT_EQ(jobs.size(), 50u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<int>(i));
    if (i > 0) {
      EXPECT_GT(jobs[i].arrival_time, jobs[i - 1].arrival_time);
    }
    EXPECT_GT(jobs[i].profile.solo_time_pack, 0.0);
  }
}

TEST_F(TraceTest, GeneratorArrivalRateMatchesLambda) {
  GeneratorOptions options;
  options.job_count = 5000;
  options.arrival_rate_per_minute = 10.0;
  const auto jobs = generate_workload(options, model_, topo_);
  const double span = jobs.back().arrival_time - jobs.front().arrival_time;
  const double per_minute = (jobs.size() - 1) / (span / 60.0);
  EXPECT_NEAR(per_minute, 10.0, 0.5);
}

TEST_F(TraceTest, GeneratorBatchDistributionIsBinomial) {
  GeneratorOptions options;
  options.job_count = 20000;
  options.batch_binomial_p = 0.5;
  const auto jobs = generate_workload(options, model_, topo_);
  std::array<int, jobgraph::kBatchClassCount> counts{};
  for (const auto& job : jobs) {
    ++counts[static_cast<size_t>(job.profile.batch)];
  }
  // Binomial(3, 0.5): probabilities 1/8, 3/8, 3/8, 1/8.
  const double n = static_cast<double>(jobs.size());
  EXPECT_NEAR(counts[0] / n, 0.125, 0.01);
  EXPECT_NEAR(counts[1] / n, 0.375, 0.015);
  EXPECT_NEAR(counts[2] / n, 0.375, 0.015);
  EXPECT_NEAR(counts[3] / n, 0.125, 0.01);
}

TEST_F(TraceTest, GeneratorNnDistributionIsBinomial) {
  GeneratorOptions options;
  options.job_count = 20000;
  const auto jobs = generate_workload(options, model_, topo_);
  std::array<int, jobgraph::kNeuralNetCount> counts{};
  for (const auto& job : jobs) {
    ++counts[static_cast<size_t>(job.profile.nn)];
  }
  // Binomial(2, 0.5): 1/4, 1/2, 1/4.
  const double n = static_cast<double>(jobs.size());
  EXPECT_NEAR(counts[0] / n, 0.25, 0.015);
  EXPECT_NEAR(counts[1] / n, 0.50, 0.015);
  EXPECT_NEAR(counts[2] / n, 0.25, 0.015);
}

TEST_F(TraceTest, GeneratorMinUtilityFollowsGpuCount) {
  GeneratorOptions options;
  options.job_count = 200;
  const auto jobs = generate_workload(options, model_, topo_);
  for (const auto& job : jobs) {
    EXPECT_DOUBLE_EQ(job.min_utility, job.num_gpus == 1 ? 0.3 : 0.5);
  }
}

TEST_F(TraceTest, GeneratorDeterministicPerSeed) {
  GeneratorOptions options;
  options.job_count = 20;
  const auto a = generate_workload(options, model_, topo_);
  const auto b = generate_workload(options, model_, topo_);
  options.seed = 43;
  const auto c = generate_workload(options, model_, topo_);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].num_gpus, b[i].num_gpus);
  }
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival_time != c[i].arrival_time) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(TraceTest, RoundTripThroughJsonl) {
  const auto jobs = exp::table1_jobs(model_, topo_);
  const auto report =
      exp::run_policy(sched::Policy::kTopoAwareP, jobs, topo_, model_);
  const auto records = from_recorder(report.recorder, jobs);
  ASSERT_EQ(records.size(), jobs.size());

  const std::string path = "/tmp/gts_trace_test.jsonl";
  ASSERT_TRUE(write_jsonl(records, path).is_ok());
  const auto loaded = read_jsonl(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_EQ(loaded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, records[i].id);
    EXPECT_DOUBLE_EQ((*loaded)[i].arrival, records[i].arrival);
    EXPECT_EQ((*loaded)[i].nn, records[i].nn);
    EXPECT_EQ((*loaded)[i].gpus, records[i].gpus);
    EXPECT_DOUBLE_EQ((*loaded)[i].end, records[i].end);
  }
  std::remove(path.c_str());
}

TEST_F(TraceTest, TraceToWorkloadReplays) {
  const auto jobs = exp::table1_jobs(model_, topo_);
  const auto report =
      exp::run_policy(sched::Policy::kFcfs, jobs, topo_, model_);
  const auto records = from_recorder(report.recorder, jobs);
  const auto replay = to_workload(records, model_, topo_);
  ASSERT_EQ(replay.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(replay[i].id, jobs[i].id);
    EXPECT_DOUBLE_EQ(replay[i].arrival_time, jobs[i].arrival_time);
    EXPECT_EQ(replay[i].num_gpus, jobs[i].num_gpus);
    EXPECT_EQ(replay[i].iterations, jobs[i].iterations);
    EXPECT_EQ(replay[i].profile.nn, jobs[i].profile.nn);
  }
}

TEST_F(TraceTest, ReadRejectsCorruptLines) {
  const std::string path = "/tmp/gts_trace_bad.jsonl";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("{\"id\": 1, \"nn\": \"AlexNet\"\n", f);  // unterminated
    std::fclose(f);
  }
  EXPECT_FALSE(read_jsonl(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gts::trace
