#include <gtest/gtest.h>

#include "exp/figures.hpp"
#include "perf/model.hpp"
#include "perf/params.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"

namespace gts::perf {
namespace {

using jobgraph::BatchClass;
using jobgraph::JobRequest;
using jobgraph::NeuralNet;

class PerfModelTest : public ::testing::Test {
 protected:
  topo::TopologyGraph minsky_ = topo::builders::power8_minsky();
  DlWorkloadModel model_{CalibrationParams::paper_minsky()};
};

// ----------------------------------------------------- path classes -------

TEST_F(PerfModelTest, PathClassification) {
  EXPECT_EQ(model_.classify_path(minsky_, 0, 1), PathClass::kPeerToPeer);
  EXPECT_EQ(model_.classify_path(minsky_, 0, 2),
            PathClass::kCrossSocketNvlinkHost);

  const topo::TopologyGraph pcie = topo::builders::power8_pcie();
  EXPECT_EQ(model_.classify_path(pcie, 0, 1), PathClass::kSameSocketHost);
  EXPECT_EQ(model_.classify_path(pcie, 0, 2),
            PathClass::kCrossSocketPcieHost);

  const topo::TopologyGraph cluster =
      topo::builders::cluster(2, topo::builders::MachineShape::kPower8Minsky);
  EXPECT_EQ(model_.classify_path(cluster, 0, 4), PathClass::kCrossMachine);
}

TEST_F(PerfModelTest, EffectiveBandwidthPackIsPeakNvlink) {
  EXPECT_DOUBLE_EQ(model_.effective_bandwidth(minsky_, 0, 1, nullptr), 40.0);
}

TEST_F(PerfModelTest, EffectiveBandwidthSpreadIsDiscountedSmpBus) {
  const double bw = model_.effective_bandwidth(minsky_, 0, 2, nullptr);
  EXPECT_NEAR(bw, 32.0 * 0.86, 1e-9);
}

TEST_F(PerfModelTest, LinkSharingHalvesBandwidth) {
  LinkFlows flows(static_cast<size_t>(minsky_.link_count()), 0);
  // One foreign flow on every link of the 0-1 path.
  for (const topo::LinkId link : minsky_.gpu_path(0, 1).links) {
    flows[static_cast<size_t>(link)] = 1;
  }
  EXPECT_DOUBLE_EQ(model_.effective_bandwidth(minsky_, 0, 1, &flows), 20.0);
}

// ----------------------------------------------------- Fig. 3 anchors -----

TEST_F(PerfModelTest, AlexNetComputeAnchors) {
  // ~1 s per 40 iterations at batch 1; ~66 s at batch 128 (Section 3.2).
  const double batch1 = model_.compute_time(NeuralNet::kAlexNet, 1) * 40;
  const double batch128 = model_.compute_time(NeuralNet::kAlexNet, 128) * 40;
  EXPECT_NEAR(batch1, 1.0, 0.15);
  EXPECT_NEAR(batch128, 66.0, 2.0);
}

TEST_F(PerfModelTest, AlexNetCommAnchorConstantInBatch) {
  // ~2 s per 40 iterations regardless of batch size (pack placement).
  const std::vector<int> pack = {0, 1};
  for (const int batch : {1, 4, 64, 128}) {
    const JobRequest job =
        JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, batch, 2, 0.0, 40);
    const IterationBreakdown step = model_.iteration(job, pack, minsky_);
    EXPECT_NEAR(step.comm_s * 40, 2.0, 0.2) << "batch " << batch;
  }
}

TEST_F(PerfModelTest, ComputeMonotoneInBatch) {
  for (int n = 0; n < jobgraph::kNeuralNetCount; ++n) {
    const auto nn = static_cast<NeuralNet>(n);
    double last = 0.0;
    for (const int batch : jobgraph::kBatchSweep) {
      const double t = model_.compute_time(nn, batch);
      EXPECT_GT(t, last);
      last = t;
    }
  }
}

// ----------------------------------------------------- Fig. 4 shape -------

TEST_F(PerfModelTest, PackNeverSlowerThanSpread) {
  const auto rows = exp::fig4_pack_vs_spread(model_, minsky_);
  for (const auto& row : rows) {
    EXPECT_GE(row.speedup, 0.999)
        << jobgraph::to_string(row.nn) << " batch " << row.batch_size;
  }
}

TEST_F(PerfModelTest, AlexNetSpeedupAnchors) {
  const auto rows = exp::fig4_pack_vs_spread(model_, minsky_);
  for (const auto& row : rows) {
    if (row.nn != NeuralNet::kAlexNet) continue;
    if (row.batch_size <= 2) {
      EXPECT_GT(row.speedup, 1.20) << "batch " << row.batch_size;
      EXPECT_LT(row.speedup, 1.40) << "batch " << row.batch_size;
    }
    if (row.batch_size >= 64) {
      EXPECT_LT(row.speedup, 1.05) << "batch " << row.batch_size;
    }
  }
}

TEST_F(PerfModelTest, SpeedupMonotoneDecreasingInBatch) {
  const auto rows = exp::fig4_pack_vs_spread(model_, minsky_);
  for (int n = 0; n < jobgraph::kNeuralNetCount; ++n) {
    const auto nn = static_cast<NeuralNet>(n);
    double last = 10.0;
    for (const auto& row : rows) {
      if (row.nn != nn) continue;
      EXPECT_LE(row.speedup, last + 1e-9);
      last = row.speedup;
    }
  }
}

TEST_F(PerfModelTest, GoogLeNetNearlyFlat) {
  const auto rows = exp::fig4_pack_vs_spread(model_, minsky_);
  for (const auto& row : rows) {
    if (row.nn != NeuralNet::kGoogLeNet) continue;
    EXPECT_LT(row.speedup, 1.10) << "batch " << row.batch_size;
  }
}

// ------------------------------------------- Section 3.2 PCI-e prose ------

TEST_F(PerfModelTest, PcieSpeedupsLowerThanNvlinkAtEveryBatch) {
  const topo::TopologyGraph pcie = topo::builders::power8_pcie();
  const DlWorkloadModel k80(CalibrationParams::paper_k80());
  const auto nv_rows = exp::fig4_pack_vs_spread(model_, minsky_);
  const auto pc_rows = exp::fig4_pack_vs_spread(k80, pcie);
  for (size_t i = 0; i < nv_rows.size(); ++i) {
    if (nv_rows[i].nn != NeuralNet::kAlexNet) continue;
    if (nv_rows[i].batch_size > 8) continue;
    EXPECT_GT(nv_rows[i].speedup, pc_rows[i].speedup)
        << "batch " << nv_rows[i].batch_size;
    // Both still show a meaningful pack benefit at tiny batches.
    if (nv_rows[i].batch_size <= 2) {
      EXPECT_GT(pc_rows[i].speedup, 1.10);
    }
  }
}

// ----------------------------------------------------- Fig. 5 shape -------

TEST_F(PerfModelTest, BandwidthSeriesSmallBatchBeatsLarge) {
  const auto tiny = exp::fig5_bandwidth_series(model_, minsky_, 1, 50.0, 0.5);
  const auto big = exp::fig5_bandwidth_series(model_, minsky_, 128, 50.0, 0.5);
  double tiny_mean = 0.0;
  double tiny_peak = 0.0;
  for (const auto& p : tiny) {
    tiny_mean += p.gbps;
    tiny_peak = std::max(tiny_peak, p.gbps);
  }
  tiny_mean /= static_cast<double>(tiny.size());
  double big_mean = 0.0;
  for (const auto& p : big) big_mean += p.gbps;
  big_mean /= static_cast<double>(big.size());

  // Tiny batches hammer the link (~40 GB/s peaks); big batches idle at a
  // few GB/s (Fig. 5).
  EXPECT_NEAR(tiny_peak, 40.0, 1.0);
  EXPECT_GT(tiny_mean, 4.0 * big_mean);
  EXPECT_LT(big_mean, 8.0);
}

// ----------------------------------------------------- Fig. 6 matrix ------

TEST_F(PerfModelTest, CollocationMatrixAnchors) {
  using exp::fig6_collocation_slowdown;
  const double tiny_tiny = fig6_collocation_slowdown(
      model_, minsky_, BatchClass::kTiny, BatchClass::kTiny);
  const double tiny_big = fig6_collocation_slowdown(
      model_, minsky_, BatchClass::kTiny, BatchClass::kBig);
  const double small_big = fig6_collocation_slowdown(
      model_, minsky_, BatchClass::kSmall, BatchClass::kBig);
  const double big_big = fig6_collocation_slowdown(
      model_, minsky_, BatchClass::kBig, BatchClass::kBig);
  EXPECT_NEAR(tiny_tiny, 0.30, 0.03);
  EXPECT_NEAR(tiny_big, 0.24, 0.03);
  EXPECT_NEAR(small_big, 0.21, 0.03);
  EXPECT_NEAR(big_big, 0.0, 0.01);
}

TEST_F(PerfModelTest, CollocationMatrixMonotone) {
  // More communication (smaller batch) on either side -> more slowdown.
  for (int mine = 0; mine < jobgraph::kBatchClassCount; ++mine) {
    for (int other = 1; other < jobgraph::kBatchClassCount; ++other) {
      const double left = exp::fig6_collocation_slowdown(
          model_, minsky_, static_cast<BatchClass>(mine),
          static_cast<BatchClass>(other - 1));
      const double right = exp::fig6_collocation_slowdown(
          model_, minsky_, static_cast<BatchClass>(mine),
          static_cast<BatchClass>(other));
      EXPECT_GE(left, right - 1e-9);
    }
  }
}

TEST_F(PerfModelTest, InterferenceFactorComposition) {
  const CoRunner one[] = {{BatchClass::kTiny, false}};
  const CoRunner two[] = {{BatchClass::kTiny, false},
                          {BatchClass::kTiny, false}};
  const double f1 = model_.interference_factor(BatchClass::kTiny, one);
  const double f2 = model_.interference_factor(BatchClass::kTiny, two);
  EXPECT_DOUBLE_EQ(f1, 1.30);
  EXPECT_DOUBLE_EQ(f2, 1.30 * 1.30);
  EXPECT_DOUBLE_EQ(model_.interference_factor(BatchClass::kTiny, {}), 1.0);
}

TEST_F(PerfModelTest, SameSocketInterferenceIsWorse) {
  const CoRunner far[] = {{BatchClass::kTiny, false}};
  const CoRunner near[] = {{BatchClass::kTiny, true}};
  EXPECT_GT(model_.interference_factor(BatchClass::kTiny, near),
            model_.interference_factor(BatchClass::kTiny, far));
}

// ------------------------------------------------------------ profile -----

TEST_F(PerfModelTest, PackPlacementFillsSocketsInOrder) {
  EXPECT_EQ(pack_placement(minsky_, 2), (std::vector<int>{0, 1}));
  EXPECT_EQ(pack_placement(minsky_, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pack_placement(minsky_, 4), (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(PerfModelTest, SpreadPlacementRoundRobinsSockets) {
  EXPECT_EQ(spread_placement(minsky_, 2), (std::vector<int>{0, 2}));
  EXPECT_EQ(spread_placement(minsky_, 4), (std::vector<int>{0, 2, 1, 3}));
}

TEST_F(PerfModelTest, ProfileAnchorsConsistent) {
  const JobRequest job = make_profiled_dl(0, 0.0, NeuralNet::kAlexNet, 1, 2,
                                          0.5, model_, minsky_, 100);
  EXPECT_GT(job.profile.solo_time_pack, 0.0);
  EXPECT_GT(job.profile.solo_time_spread, job.profile.solo_time_pack);
  // The slowdown row mirrors the calibration matrix.
  EXPECT_DOUBLE_EQ(job.profile.collocation_slowdown[0], 0.30);
  EXPECT_DOUBLE_EQ(job.profile.collocation_slowdown[3], 0.24);
}

TEST_F(PerfModelTest, CompletionTimeScalesWithIterations) {
  const JobRequest short_job =
      JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 1, 2, 0.0, 100);
  const JobRequest long_job =
      JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 1, 2, 0.0, 200);
  const std::vector<int> pack = {0, 1};
  EXPECT_NEAR(model_.completion_time(long_job, pack, minsky_),
              2.0 * model_.completion_time(short_job, pack, minsky_), 1e-9);
}

TEST_F(PerfModelTest, SingleGpuJobHasNoCommTime) {
  const JobRequest job =
      JobRequest::make_dl(0, 0.0, NeuralNet::kAlexNet, 1, 1, 0.0, 100);
  const std::vector<int> gpus = {0};
  const IterationBreakdown step = model_.iteration(job, gpus, minsky_);
  EXPECT_DOUBLE_EQ(step.comm_s, 0.0);
  EXPECT_TRUE(step.all_pairs_p2p);
}

// Parameterized sweep: iteration time is strictly positive and finite for
// every NN / batch / placement combination.
struct SweepParam {
  int nn;
  int batch_size;
  bool pack;
};
class IterationSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IterationSweepTest, TimesFiniteAndPositive) {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const DlWorkloadModel model{CalibrationParams::paper_minsky()};
  const SweepParam p = GetParam();
  const JobRequest job = JobRequest::make_dl(
      0, 0.0, static_cast<NeuralNet>(p.nn), p.batch_size, 2, 0.0, 10);
  const std::vector<int> gpus = p.pack ? std::vector<int>{0, 1}
                                       : std::vector<int>{0, 2};
  const IterationBreakdown step = model.iteration(job, gpus, minsky);
  EXPECT_GT(step.total_s, 0.0);
  EXPECT_LT(step.total_s, 60.0);
  EXPECT_GT(step.compute_s, 0.0);
  EXPECT_GT(step.comm_s, 0.0);
  EXPECT_EQ(step.all_pairs_p2p, p.pack);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (int nn = 0; nn < jobgraph::kNeuralNetCount; ++nn) {
    for (const int batch : jobgraph::kBatchSweep) {
      params.push_back({nn, batch, true});
      params.push_back({nn, batch, false});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, IterationSweepTest,
                         ::testing::ValuesIn(sweep_params()));

}  // namespace
}  // namespace gts::perf
