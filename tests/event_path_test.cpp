// Event-path differential suite (DESIGN.md section 20): the scoped
// O(touched) event path — link-indexed rate recompute, skip-on-equal-rate
// regime anchoring, FlowDelta subtract-on-read, indexed finish-time heap —
// must be byte-identical to the pre-scoping full recompute it replaced.
//
//   * Scoped vs full_event_recompute oracle on seeded mixed traces with a
//     heavy multi-machine share, at scoring threads {1, 8} and shard
//     counts {1, 4}: every record (GPUs, start, end, utility) EXACT-equal.
//   * Heap vs the old all-jobs scan for next_completion, including
//     bitwise rate ties (smaller id wins, the ordered-map tie-break) and
//     zero-rate jobs (absent from the heap).
//   * Link-index + heap + occupancy-counter consistency audited by
//     check::validate after every step of random place/remove churn.
//   * Snapshot -> restore: a restored driver carries bitwise-identical
//     rates and finish times and replays the rest of the run identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "cluster/recorder.hpp"
#include "cluster/state.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "sched/driver.hpp"
#include "sched/topo_aware.hpp"
#include "shard/sharded_driver.hpp"
#include "sim/arrivals.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace gts {
namespace {

using topo::builders::MachineShape;

/// Mixed workload with a guaranteed multi-machine share: the task-count
/// pattern {1, 2, 4, 8} puts every 4th job across two Minsky machines
/// (4 GPUs each), and 8-GPU jobs carry cross-machine comm flows — the
/// placements the link index exists for.
std::vector<jobgraph::JobRequest> mixed_jobs(
    int job_count, const perf::DlWorkloadModel& model,
    const topo::TopologyGraph& topology, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<double> arrivals =
      sim::poisson_arrivals(job_count, /*rate_per_minute=*/40.0, rng);
  const jobgraph::NeuralNet nets[] = {jobgraph::NeuralNet::kAlexNet,
                                      jobgraph::NeuralNet::kCaffeRef,
                                      jobgraph::NeuralNet::kGoogLeNet};
  const int batches[] = {1, 4, 16};
  const int tasks_pattern[] = {1, 2, 4, 8};
  const int per_machine =
      static_cast<int>(topology.gpus_of_machine(0).size());

  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  for (int i = 0; i < job_count; ++i) {
    const int tasks = tasks_pattern[i % 4];
    jobgraph::JobRequest request = perf::make_profiled_dl(
        i, arrivals[static_cast<size_t>(i)], nets[i % 3],
        batches[(i / 3) % 3], tasks, tasks == 1 ? 0.3 : 0.5, model, topology,
        300);
    if (tasks > per_machine) request.profile.single_node = false;
    jobs.push_back(std::move(request));
  }
  return jobs;
}

/// Byte-identity over the full record stream: EXPECT_EQ on doubles is an
/// exact bitwise comparison, which is the whole point of this suite.
void expect_identical_records(const cluster::Recorder& scoped,
                              const cluster::Recorder& oracle,
                              const std::string& label) {
  ASSERT_EQ(scoped.records().size(), oracle.records().size()) << label;
  for (size_t i = 0; i < scoped.records().size(); ++i) {
    const cluster::JobRecord& a = scoped.records()[i];
    const cluster::JobRecord& b = oracle.records()[i];
    EXPECT_EQ(a.id, b.id) << label << " record " << i;
    EXPECT_EQ(a.gpus, b.gpus) << label << " record " << i;
    EXPECT_EQ(a.start, b.start) << label << " record " << i;
    EXPECT_EQ(a.end, b.end) << label << " record " << i;
    EXPECT_EQ(a.placement_utility, b.placement_utility)
        << label << " record " << i;
    EXPECT_EQ(a.postponements, b.postponements) << label << " record " << i;
    EXPECT_EQ(a.p2p, b.p2p) << label << " record " << i;
  }
}

/// The pre-heap next_completion: linear scan over every running job,
/// recomputing the finish time from banked progress at `now`. Kept here
/// verbatim as the reference the heap must agree with.
std::optional<std::pair<int, double>> scan_next_completion(
    const cluster::ClusterState& state, double now) {
  std::optional<std::pair<int, double>> best;
  for (const auto& [id, job] : state.running_jobs()) {
    if (job.rate <= 0.0) continue;
    const double pending = now - job.last_update;
    const double done = job.progress_iterations + job.rate * pending;
    const double remaining =
        static_cast<double>(job.request.iterations) - done;
    const double finish = now + std::max(0.0, remaining) / job.rate;
    if (!best || finish < best->second) best = {id, finish};
  }
  return best;
}

TEST(EventPathTest, ScopedMatchesFullRecomputeOracleAcrossThreadCounts) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = mixed_jobs(400, model, topology, /*seed=*/20260807);

  for (const int threads : {1, 8}) {
    const auto run_mode = [&](bool full_recompute) {
      sched::TopoAwareScheduler scheduler({}, /*postpone=*/false);
      sched::DriverOptions options;
      options.record_series = false;
      options.full_event_recompute = full_recompute;
      if (threads > 1) {
        options.parallel_scoring = true;
        options.scoring_threads = threads;
      }
      sched::Driver driver(topology, model, scheduler, options);
      return driver.run(jobs);
    };
    const sched::DriverReport oracle = run_mode(/*full_recompute=*/true);
    const sched::DriverReport scoped = run_mode(/*full_recompute=*/false);
    ASSERT_EQ(oracle.recorder.records().size(), 400u);
    expect_identical_records(scoped.recorder, oracle.recorder,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(scoped.recorder.slo_violations(),
              oracle.recorder.slo_violations());
    EXPECT_EQ(scoped.events, oracle.events);
    EXPECT_EQ(scoped.end_time, oracle.end_time);
  }
}

TEST(EventPathTest, ScopedMatchesFullRecomputeOracleAcrossShardCounts) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = mixed_jobs(300, model, topology, /*seed=*/7);

  for (const int shards : {1, 4}) {
    const auto run_mode = [&](bool full_recompute) {
      shard::ShardedOptions options;
      options.shards = shards;
      options.driver.record_series = false;
      options.driver.full_event_recompute = full_recompute;
      shard::ShardedDriver driver(topology, model, options);
      return driver.run(jobs);
    };
    const sched::DriverReport oracle = run_mode(/*full_recompute=*/true);
    const sched::DriverReport scoped = run_mode(/*full_recompute=*/false);
    ASSERT_GT(oracle.recorder.records().size(), 0u);
    expect_identical_records(scoped.recorder, oracle.recorder,
                             "shards=" + std::to_string(shards));
    EXPECT_EQ(scoped.end_time, oracle.end_time);
  }
}

TEST(EventPathTest, HeapAgreesWithScanAndBreaksTiesBySmallerId) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(4, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(topology, model);

  // Two identical single-GPU jobs on symmetric GPUs of different machines:
  // identical inputs give bitwise-equal rates and finish times, the exact
  // tie the (time, id) heap ordering must resolve like the old id-ordered
  // scan — smaller id first.
  const jobgraph::JobRequest a = perf::make_profiled_dl(
      3, 0.0, jobgraph::NeuralNet::kAlexNet, 4, 1, 0.3, model, topology, 100);
  const jobgraph::JobRequest b = perf::make_profiled_dl(
      1, 0.0, jobgraph::NeuralNet::kAlexNet, 4, 1, 0.3, model, topology, 100);
  state.place(a, {topology.gpus_of_machine(0)[0]}, 0.0);
  state.place(b, {topology.gpus_of_machine(1)[0]}, 0.0);
  ASSERT_EQ(state.find(3)->rate, state.find(1)->rate);
  ASSERT_EQ(state.find(3)->finish_time, state.find(1)->finish_time);

  const auto tied = state.next_completion(0.0);
  ASSERT_TRUE(tied.has_value());
  EXPECT_EQ(tied->first, 1);  // smaller id wins the bitwise tie
  const auto scanned = scan_next_completion(state, 0.0);
  ASSERT_TRUE(scanned.has_value());
  EXPECT_EQ(tied->first, scanned->first);
  EXPECT_EQ(tied->second, scanned->second);

  // Both tied jobs are due together at the stored finish time.
  const std::vector<int> due = state.due_completions(tied->second);
  EXPECT_EQ(due, (std::vector<int>{1, 3}));
  EXPECT_TRUE(state.due_completions(tied->second - 1.0).empty());

  // A third, slower job (bigger batch, interference from machine sharing)
  // lands behind the tied pair; heap and scan agree after banking at an
  // intermediate time (banking rebases both to the same anchors).
  const jobgraph::JobRequest c = perf::make_profiled_dl(
      2, 0.0, jobgraph::NeuralNet::kGoogLeNet, 16, 2, 0.5, model, topology,
      5000);
  state.place(c,
              {topology.gpus_of_machine(2)[0], topology.gpus_of_machine(2)[1]},
              1.0);
  state.bank_progress(2.5);
  const auto heap_next = state.next_completion(2.5);
  const auto scan_next = scan_next_completion(state, 2.5);
  ASSERT_TRUE(heap_next.has_value());
  ASSERT_TRUE(scan_next.has_value());
  EXPECT_EQ(heap_next->first, scan_next->first);
  EXPECT_EQ(heap_next->second, scan_next->second);

  // Removing the heap top promotes the other half of the tie.
  state.remove(1, 3.0);
  const auto promoted = state.next_completion(3.0);
  ASSERT_TRUE(promoted.has_value());
  EXPECT_EQ(promoted->first, 3);
  EXPECT_EQ(promoted->second, scan_next_completion(state, 3.0)->second);
}

TEST(EventPathTest, ZeroRateJobsStayOutOfTheHeap) {
  // compute_scale = 0 makes a single-GPU job (no comm edges) take zero
  // time per iteration -> rate 0 -> it can never complete on its own and
  // must not occupy a heap slot (the old scan skipped rate <= 0 too).
  perf::CalibrationParams params = perf::CalibrationParams::paper_minsky();
  params.compute_scale = 0.0;
  const perf::DlWorkloadModel model(params);
  const topo::TopologyGraph topology =
      topo::builders::cluster(2, MachineShape::kPower8Minsky);
  cluster::ClusterState state(topology, model);

  const jobgraph::JobRequest solo = perf::make_profiled_dl(
      0, 0.0, jobgraph::NeuralNet::kAlexNet, 4, 1, 0.3, model, topology, 100);
  state.place(solo, {0}, 0.0);
  ASSERT_NE(state.find(0), nullptr);
  EXPECT_EQ(state.find(0)->rate, 0.0);
  EXPECT_EQ(state.find(0)->heap_pos, -1);
  EXPECT_TRUE(state.finish_heap().empty());
  EXPECT_FALSE(state.next_completion(0.0).has_value());
  EXPECT_EQ(scan_next_completion(state, 0.0), std::nullopt);
  EXPECT_TRUE(state.due_completions(1e9).empty());

  // A communicating job still completes: comm time is nonzero, so it gets
  // a slot while the zero-rate job keeps none.
  const jobgraph::JobRequest pair = perf::make_profiled_dl(
      1, 0.0, jobgraph::NeuralNet::kAlexNet, 4, 2, 0.5, model, topology, 100);
  state.place(pair, {4, 5}, 0.0);
  ASSERT_GT(state.find(1)->rate, 0.0);
  EXPECT_EQ(state.finish_heap().size(), 1u);
  const auto next = state.next_completion(0.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->first, 1);
  EXPECT_EQ(next->second, scan_next_completion(state, 0.0)->second);
}

TEST(EventPathTest, ChurnKeepsLinkIndexHeapAndCountersConsistent) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(6, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(topology, model);
  const auto jobs = mixed_jobs(120, model, topology, /*seed=*/99);

  // Random place/remove churn with naive first-free placement (8-GPU jobs
  // straddle machines, exercising the link index); check::validate replays
  // the link index, flow_link_counts, finish heap and occupancy counters
  // from scratch after every mutation.
  util::Rng rng(4242);
  std::deque<int> resident;
  double now = 0.0;
  for (const jobgraph::JobRequest& job : jobs) {
    now += 1.0;
    while (state.free_gpu_count() < job.num_gpus && !resident.empty()) {
      state.remove(resident.front(), now);
      resident.pop_front();
      ASSERT_TRUE(check::validate(state).is_ok()) << "after eviction";
    }
    std::vector<int> gpus;
    for (int g = 0; g < topology.gpu_count() &&
                    static_cast<int>(gpus.size()) < job.num_gpus;
         ++g) {
      if (state.gpu_free(g)) gpus.push_back(g);
    }
    ASSERT_EQ(static_cast<int>(gpus.size()), job.num_gpus);
    state.place(job, std::move(gpus), now);
    resident.push_back(job.id);
    ASSERT_TRUE(check::validate(state).is_ok()) << "after placing " << job.id;
    // Random mid-stream removal keeps the indices churning both ways.
    if (resident.size() > 3 && rng.uniform() < 0.3) {
      const size_t victim =
          static_cast<size_t>(rng.uniform_int(
              0, static_cast<int>(resident.size()) - 1));
      state.remove(resident[victim], now);
      resident.erase(resident.begin() + static_cast<long>(victim));
      ASSERT_TRUE(check::validate(state).is_ok()) << "after random removal";
    }
  }
  while (!resident.empty()) {
    now += 1.0;
    state.remove(resident.front(), now);
    resident.pop_front();
    ASSERT_TRUE(check::validate(state).is_ok()) << "during teardown";
  }
  EXPECT_TRUE(state.finish_heap().empty());
  EXPECT_EQ(state.fragmented_machine_count(), 0);
  EXPECT_EQ(state.free_gpu_count(), topology.gpu_count());
}

TEST(EventPathTest, SnapshotRestoreCarriesBitwiseIdenticalRates) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = mixed_jobs(200, model, topology, /*seed=*/11);

  sched::TopoAwareScheduler scheduler_a({}, /*postpone=*/false);
  sched::DriverOptions options;
  options.record_series = false;
  sched::Driver original(topology, model, scheduler_a, options);
  for (const jobgraph::JobRequest& job : jobs) {
    ASSERT_EQ(original.submit(job), sched::SubmitResult::kAccepted);
  }
  const double mid = jobs[120].arrival_time;
  original.advance_to(mid);
  // The snapshot seam: banking rebases every (progress, last_update,
  // finish_time) to `mid`, which is exactly what restore re-derives.
  original.checkpoint_progress();
  ASSERT_GT(original.running_job_count(), 0);

  sched::TopoAwareScheduler scheduler_b({}, /*postpone=*/false);
  sched::Driver restored(topology, model, scheduler_b, options);
  ASSERT_TRUE(
      restored.begin_restore(mid, original.capacity_version()).is_ok());
  original.visit_running([&](const sched::RunningJobView& view) {
    const std::vector<int> gpus(view.gpus.begin(), view.gpus.end());
    EXPECT_TRUE(restored
                    .restore_running(*view.request, gpus, view.start_time,
                                     view.progress_iterations,
                                     view.placement_utility,
                                     view.noise_factor)
                    .is_ok());
    return true;
  });
  original.visit_waiting([&](const sched::WaitingView& view) {
    restored.restore_waiting(*view.request, view.attempted_version);
    return true;
  });
  for (const jobgraph::JobRequest& pending : original.pending_arrivals()) {
    EXPECT_EQ(restored.submit(pending), sched::SubmitResult::kAccepted);
  }
  ASSERT_TRUE(restored.finish_restore().is_ok());

  // Rate identity: the restored regime anchors are bitwise-equal, so both
  // processes extrapolate identical progress and finish times from `mid`.
  for (const auto& [id, job] : original.state().running_jobs()) {
    const cluster::RunningJob* twin = restored.state().find(id);
    ASSERT_NE(twin, nullptr) << "job " << id;
    EXPECT_EQ(twin->rate, job.rate) << "job " << id;
    EXPECT_EQ(twin->progress_iterations, job.progress_iterations)
        << "job " << id;
    EXPECT_EQ(twin->last_update, job.last_update) << "job " << id;
    EXPECT_EQ(twin->finish_time, job.finish_time) << "job " << id;
  }
  const auto next_a = original.state().next_completion(mid);
  const auto next_b = restored.state().next_completion(mid);
  ASSERT_EQ(next_a.has_value(), next_b.has_value());
  if (next_a) {
    EXPECT_EQ(next_a->first, next_b->first);
    EXPECT_EQ(next_a->second, next_b->second);
  }

  // Both processes replay the remainder of the run identically.
  original.advance_all();
  restored.advance_all();
  EXPECT_EQ(original.now(), restored.now());
  restored.visit_records([&](const cluster::JobRecord& record) {
    const auto twin = original.job_record(record.id);
    EXPECT_TRUE(twin.has_value()) << "job " << record.id;
    if (twin) {
      EXPECT_EQ(record.gpus, twin->gpus) << "job " << record.id;
      EXPECT_EQ(record.end, twin->end) << "job " << record.id;
    }
    return true;
  });
}

}  // namespace
}  // namespace gts
