#include <gtest/gtest.h>

#include <cstdio>

#include "exp/scenarios.hpp"
#include "jobgraph/manifest.hpp"
#include "proto/enforcement.hpp"
#include "proto/runtime.hpp"
#include "topo/builders.hpp"

namespace gts::proto {
namespace {

class ProtoTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  PrototypeRuntime runtime_{topo_, model_};
};

TEST_F(ProtoTest, EnforcementPlanSingleSocketBindsNuma) {
  const EnforcementPlan plan = make_enforcement_plan(topo_, {0, 1});
  ASSERT_EQ(plan.environment.size(), 2u);
  EXPECT_EQ(plan.environment[0], "CUDA_DEVICE_ORDER=PCI_BUS_ID");
  EXPECT_EQ(plan.environment[1], "CUDA_VISIBLE_DEVICES=0,1");
  EXPECT_EQ(plan.command_prefix, "numactl --cpunodebind=0 --membind=0");
}

TEST_F(ProtoTest, EnforcementPlanCrossSocketSkipsNuma) {
  const EnforcementPlan plan = make_enforcement_plan(topo_, {1, 2});
  EXPECT_EQ(plan.environment[1], "CUDA_VISIBLE_DEVICES=1,2");
  EXPECT_TRUE(plan.command_prefix.empty());
}

TEST_F(ProtoTest, EnforcementUsesMachineLocalIds) {
  const topo::TopologyGraph cluster = topo::builders::cluster(
      2, topo::builders::MachineShape::kPower8Minsky);
  // Global GPUs 4,5 are machine 1's local GPUs 0,1.
  const EnforcementPlan plan = make_enforcement_plan(cluster, {4, 5});
  EXPECT_EQ(plan.environment[1], "CUDA_VISIBLE_DEVICES=0,1");
}

TEST_F(ProtoTest, RunsTable1Workload) {
  PrototypeConfig config;
  config.policy = sched::Policy::kTopoAwareP;
  const PrototypeRun run =
      runtime_.run(config, exp::table1_jobs(model_, topo_));
  EXPECT_EQ(run.policy_name, "TOPO-AWARE-P");
  EXPECT_EQ(run.report.recorder.records().size(), 6u);
  for (const auto& record : run.report.recorder.records()) {
    EXPECT_TRUE(record.finished()) << "job " << record.id;
  }
  EXPECT_EQ(run.enforcements.size(), 6u);
}

TEST_F(ProtoTest, ManifestDrivenRun) {
  // Build a small manifest on disk and run it, mirroring the prototype's
  // JSON-driven main loop (Section 5.1 / Appendix A.3).
  const std::string path = "/tmp/gts_proto_manifest.json";
  std::vector<jobgraph::JobRequest> jobs;
  jobs.push_back(jobgraph::JobRequest::make_dl(
      0, 0.0, jobgraph::NeuralNet::kAlexNet, 1, 2, 0.5, 200));
  jobs.push_back(jobgraph::JobRequest::make_dl(
      1, 2.0, jobgraph::NeuralNet::kGoogLeNet, 4, 1, 0.3, 200));
  ASSERT_TRUE(jobgraph::save_manifest_file(jobs, path).is_ok());

  PrototypeConfig config;
  config.policy = sched::Policy::kTopoAware;
  const auto run = runtime_.run_manifest(config, path);
  ASSERT_TRUE(run.has_value()) << run.error().message;
  EXPECT_EQ(run->report.recorder.records().size(), 2u);
  // Profiles were filled on load.
  for (const auto& record : run->report.recorder.records()) {
    EXPECT_GT(record.best_solo_time, 0.0);
    EXPECT_TRUE(record.finished());
  }
  std::remove(path.c_str());
}

TEST_F(ProtoTest, ManifestErrorsPropagate) {
  PrototypeConfig config;
  EXPECT_FALSE(runtime_.run_manifest(config, "/nonexistent.json").has_value());
}

}  // namespace
}  // namespace gts::proto
