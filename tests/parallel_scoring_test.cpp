// Parallel candidate scoring (DESIGN.md §17): fanning the per-candidate
// DRB + utility evaluations of TopoAwareScheduler across a worker pool
// must be invisible in every observable output. The differential harness
// replays a seeded 500-job trace against the serial oracle
// (parallel_scoring off) and asserts byte-identical scheduling decisions,
// explain JSONL and cache counters at 1, 2 and 8 worker threads, for both
// postponement modes. The negative control flips the test-only
// nondeterministic reduction seam (last-max instead of first-max
// tie-break) and requires the harness to catch the divergence — proving
// the suite would go red if the reduction order ever leaked into
// decisions. CI runs this suite under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/recorder.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "sched/driver.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace gts::sched {
namespace {

using topo::builders::MachineShape;

std::vector<jobgraph::JobRequest> seeded_trace(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    int jobs, std::uint64_t seed) {
  trace::GeneratorOptions options;
  options.job_count = jobs;
  options.seed = seed;
  return trace::generate_workload(options, model, topology);
}

DriverReport run_trace(const topo::TopologyGraph& topology,
                       const perf::DlWorkloadModel& model,
                       TopoAwareScheduler& scheduler,
                       const std::vector<jobgraph::JobRequest>& jobs) {
  DriverOptions options;
  options.record_series = false;
  Driver driver(topology, model, scheduler, options);
  return driver.run(jobs);
}

void expect_identical_records(const cluster::Recorder& parallel,
                              const cluster::Recorder& serial,
                              const std::string& label) {
  ASSERT_EQ(parallel.records().size(), serial.records().size()) << label;
  for (size_t i = 0; i < parallel.records().size(); ++i) {
    const cluster::JobRecord& a = parallel.records()[i];
    const cluster::JobRecord& b = serial.records()[i];
    EXPECT_EQ(a.id, b.id) << label << " record " << i;
    EXPECT_EQ(a.gpus, b.gpus) << label << " record " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << label << " record " << i;
    EXPECT_DOUBLE_EQ(a.end, b.end) << label << " record " << i;
    EXPECT_DOUBLE_EQ(a.placement_utility, b.placement_utility)
        << label << " record " << i;
    EXPECT_EQ(a.p2p, b.p2p) << label << " record " << i;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

/// Zero out `"decision_us":<number>` values. decision_us is the single
/// documented wall-clock field in explain records (obs/explain.hpp) — it
/// measures the place() call, so it varies between any two runs, serial
/// or not. Everything else must match byte-for-byte.
std::string mask_decision_us(std::string bytes) {
  const std::string key = "\"decision_us\":";
  size_t pos = 0;
  while ((pos = bytes.find(key, pos)) != std::string::npos) {
    const size_t value_begin = pos + key.size();
    size_t value_end = value_begin;
    while (value_end < bytes.size() && bytes[value_end] != ',' &&
           bytes[value_end] != '}') {
      ++value_end;
    }
    bytes.replace(value_begin, value_end - value_begin, "0");
    pos = value_begin;
  }
  return bytes;
}

// The headline differential: a seeded 500-job trace on an 8-machine
// cluster (large enough that every single-node job takes the pre-scored
// candidate path the parallel scorer fans out) schedules identically —
// same GPUs, same times, same utilities, job by job — at every worker
// count, and the cache/DRB counters match the serial oracle exactly.
TEST(ParallelScoringTest, MatchesSerialOracleOn500JobTrace) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 500, /*seed=*/20260807);

  for (const bool postpone : {false, true}) {
    TopoAwareScheduler serial({}, postpone);
    const DriverReport oracle = run_trace(topology, model, serial, jobs);
    ASSERT_EQ(oracle.recorder.records().size(), 500u);
    EXPECT_EQ(serial.scoring_threads(), 0);

    for (const int threads : {1, 2, 8}) {
      const std::string label = "postpone=" + std::to_string(postpone) +
                                " threads=" + std::to_string(threads);
      TopoAwareScheduler parallel({}, postpone);
      parallel.set_parallel_scoring(threads);
      ASSERT_EQ(parallel.scoring_threads(), threads) << label;
      // CI negative self-test: with GTS_TEST_BREAK_REDUCTION set, the
      // reduction tie-break flips to last-max and this suite MUST go red
      // — a green run under the env var means the harness lost its teeth.
      if (std::getenv("GTS_TEST_BREAK_REDUCTION") != nullptr) {
        parallel.set_nondeterministic_reduction_for_test(true);
      }
      const DriverReport report = run_trace(topology, model, parallel, jobs);

      expect_identical_records(report.recorder, oracle.recorder, label);
      EXPECT_EQ(report.recorder.slo_violations(),
                oracle.recorder.slo_violations())
          << label;

      // Counters are part of the contract: probes happen on the decision
      // thread in candidate order, so hit/miss/flush sequences — not
      // just decisions — must be indistinguishable from serial.
      EXPECT_EQ(parallel.cache_stats().lookups, serial.cache_stats().lookups)
          << label;
      EXPECT_EQ(parallel.cache_stats().hits, serial.cache_stats().hits)
          << label;
      EXPECT_EQ(parallel.cache_stats().invalidations,
                serial.cache_stats().invalidations)
          << label;
      EXPECT_EQ(parallel.drb_stats().bipartitions,
                serial.drb_stats().bipartitions)
          << label;
      EXPECT_EQ(parallel.drb_stats().fm_passes, serial.drb_stats().fm_passes)
          << label;
      EXPECT_EQ(parallel.drb_stats().max_depth, serial.drb_stats().max_depth)
          << label;
    }
  }
}

// Explain output is decision-order bookkeeping, so it must also be
// byte-identical: workers never touch the DecisionScope — candidates are
// replayed on the decision thread in candidate order. The sole exception
// is decision_us, the documented wall-clock latency of place() itself,
// which is masked before comparing; every other byte (candidate lists,
// utilities, sequence numbers, outcomes) must match exactly.
TEST(ParallelScoringTest, ExplainJsonlByteIdenticalAcrossThreadCounts) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 150, /*seed=*/20260807);

  const auto explain_run = [&](int threads, const std::string& path) {
    obs::ObsConfig config;
    config.explain_out = path;
    ASSERT_TRUE(obs::configure(config));
    TopoAwareScheduler scheduler({}, /*postpone=*/true);
    if (threads > 0) scheduler.set_parallel_scoring(threads);
    run_trace(topology, model, scheduler, jobs);
    ASSERT_TRUE(obs::finalize());
    obs::reset();
  };

  const std::string serial_path =
      ::testing::TempDir() + "parallel_scoring_serial.jsonl";
  const std::string parallel_path =
      ::testing::TempDir() + "parallel_scoring_parallel.jsonl";
  explain_run(0, serial_path);
  const std::string serial_bytes = mask_decision_us(read_file(serial_path));
  ASSERT_FALSE(serial_bytes.empty());
  for (const int threads : {2, 8}) {
    explain_run(threads, parallel_path);
    EXPECT_EQ(mask_decision_us(read_file(parallel_path)), serial_bytes)
        << "threads=" << threads;
    std::remove(parallel_path.c_str());
  }
  std::remove(serial_path.c_str());
}

// set_parallel_scoring(0) tears the pool down and restores the serial
// path; re-enabling mid-life keeps decisions identical (the pool is an
// implementation detail, not scheduler state).
TEST(ParallelScoringTest, TogglingThePoolMidLifeKeepsDecisionsIdentical) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = seeded_trace(model, topology, 60, /*seed=*/99);

  TopoAwareScheduler serial({}, /*postpone=*/false);
  const DriverReport oracle = run_trace(topology, model, serial, jobs);

  TopoAwareScheduler toggled({}, /*postpone=*/false);
  toggled.set_parallel_scoring(4);
  EXPECT_EQ(toggled.scoring_threads(), 4);
  toggled.set_parallel_scoring(0);
  EXPECT_EQ(toggled.scoring_threads(), 0);
  toggled.set_parallel_scoring(2);
  EXPECT_EQ(toggled.scoring_threads(), 2);
  const DriverReport report = run_trace(topology, model, toggled, jobs);
  expect_identical_records(report.recorder, oracle.recorder, "toggled");
}

// Negative control: the seeded nondeterministic reduction (last-max
// tie-break instead of first-max) must produce a DIFFERENT placement on
// a tie-rich symmetric cluster — the exact failure mode the differential
// suite exists to catch. Eight identical empty machines tie on both the
// pre-score and the utility, so first-max picks machine 0 and last-max
// picks machine 7; if this assertion ever fails, the harness has lost
// its teeth (a broken reduction would sail through green).
TEST(ParallelScoringTest, NondeterministicReductionSeamIsDetected) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(8, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  cluster::ClusterState state(topology, model);
  const jobgraph::JobRequest job = jobgraph::JobRequest::make_dl(
      1, 0.0, jobgraph::NeuralNet::kAlexNet, 4, 2, 0.4, 250);

  TopoAwareScheduler serial({}, /*postpone=*/false);
  const auto oracle = serial.place(job, state);
  ASSERT_TRUE(oracle.has_value());

  TopoAwareScheduler faithful({}, /*postpone=*/false);
  faithful.set_parallel_scoring(4);
  const auto same = faithful.place(job, state);
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(same->gpus, oracle->gpus);
  EXPECT_DOUBLE_EQ(same->utility, oracle->utility);

  TopoAwareScheduler broken({}, /*postpone=*/false);
  broken.set_parallel_scoring(4);
  broken.set_nondeterministic_reduction_for_test(true);
  const auto diverged = broken.place(job, state);
  ASSERT_TRUE(diverged.has_value());
  EXPECT_NE(diverged->gpus, oracle->gpus)
      << "the nondeterministic-reduction seam no longer diverges; the "
         "differential suite cannot prove it would catch a real bug";
}

}  // namespace
}  // namespace gts::sched
