#include <gtest/gtest.h>

#include "metrics/chart.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

namespace gts::metrics {
namespace {

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(stddev(values), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(min_value(values), 2.0);
  EXPECT_DOUBLE_EQ(max_value(values), 9.0);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(summarize({}).count, 0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(values, 25.0), 1.75);
}

TEST(StatsTest, SummaryConsistent) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
}

TEST(StatsTest, HistogramBucketsAndClamping) {
  const std::vector<double> values = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const std::vector<int> h = histogram(values, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2);  // -1 clamps into bucket 0, plus 0.1
  EXPECT_EQ(h[1], 3);  // 0.5, 0.9, and 2.0 clamps
}

TEST(TableTest, RenderAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  const std::string text = table.render("My Table");
  EXPECT_NE(text.find("My Table"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 22.5  |"), std::string::npos);
  EXPECT_NE(text.find("|-------|"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.csv(), "a,b\n1,2\n");
}

TEST(ChartTest, LineChartRendersSeries) {
  Series s1{"ups", {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}};
  Series s2{"downs", {{0.0, 2.0}, {1.0, 1.0}, {2.0, 0.0}}};
  const std::vector<Series> series = {s1, s2};
  const std::string chart = line_chart(series);
  EXPECT_NE(chart.find("ups"), std::string::npos);
  EXPECT_NE(chart.find("downs"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(ChartTest, EmptyChartIsSafe) {
  const std::vector<Series> none;
  EXPECT_EQ(line_chart(none), "(empty chart)\n");
}

TEST(ChartTest, BarChartScalesToMax) {
  const std::vector<std::pair<std::string, double>> bars = {
      {"big", 10.0}, {"half", 5.0}, {"zero", 0.0}};
  const std::string chart = bar_chart(bars, 10);
  EXPECT_NE(chart.find("big  |##########"), std::string::npos);
  EXPECT_NE(chart.find("half |#####"), std::string::npos);
  EXPECT_NE(chart.find("zero |"), std::string::npos);
}

}  // namespace
}  // namespace gts::metrics
