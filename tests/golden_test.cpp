// Golden-file regression for the Fig. 8 prototype experiment: the full
// per-policy, per-job schedule (placements, times, utilities) is pinned
// in tests/golden/fig8.json. Any change to the perf model, utility
// weights, DRB tie-breaking or driver event ordering shows up here as a
// precise diff instead of a silent drift of the headline numbers.
//
// When a change is intentional, regenerate the golden file and commit it:
//   build-release/bench/bench_fig8_prototype --golden-out tests/golden/fig8.json
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "exp/scenarios.hpp"
#include "json/json.hpp"
#include "perf/model.hpp"
#include "runner/experiments.hpp"
#include "sched/driver.hpp"
#include "sched/topo_aware.hpp"
#include "topo/builders.hpp"

namespace gts {
namespace {

constexpr double kRelTolerance = 1e-6;

/// Recursively compares `actual` against `expected`; numbers within
/// relative tolerance, everything else exactly. Mismatches report their
/// JSON path.
void expect_same(const json::Value& expected, const json::Value& actual,
                 const std::string& path) {
  ASSERT_EQ(static_cast<int>(expected.type()),
            static_cast<int>(actual.type()))
      << "type mismatch at " << path;
  switch (expected.type()) {
    case json::Type::kNumber: {
      const double want = expected.as_number();
      const double got = actual.as_number();
      const double scale = std::max({1.0, std::fabs(want), std::fabs(got)});
      EXPECT_LE(std::fabs(want - got), kRelTolerance * scale)
          << path << ": expected " << want << ", got " << got;
      return;
    }
    case json::Type::kArray: {
      const json::Array& want = expected.as_array();
      const json::Array& got = actual.as_array();
      ASSERT_EQ(want.size(), got.size()) << "array size at " << path;
      for (size_t i = 0; i < want.size(); ++i) {
        expect_same(want[i], got[i], path + "[" + std::to_string(i) + "]");
      }
      return;
    }
    case json::Type::kObject: {
      const json::Object& want = expected.as_object();
      const json::Object& got = actual.as_object();
      for (const auto& [key, member] : want) {
        ASSERT_TRUE(got.count(key) > 0) << "missing key " << path << "/" << key;
        expect_same(member, got.at(key), path + "/" + key);
      }
      for (const auto& [key, member] : got) {
        (void)member;
        EXPECT_TRUE(want.count(key) > 0)
            << "unexpected key " << path << "/" << key;
      }
      return;
    }
    default:
      EXPECT_TRUE(expected == actual) << "value mismatch at " << path;
      return;
  }
}

TEST(GoldenTest, Fig8PrototypeMatchesGoldenFile) {
  const std::string path = std::string(GTS_GOLDEN_DIR) + "/fig8.json";
  const auto golden = json::parse_file(path);
  ASSERT_TRUE(golden) << golden.error().message
                      << " — regenerate with bench_fig8_prototype "
                         "--golden-out tests/golden/fig8.json";

  const json::Value actual = runner::fig8_payload();
  expect_same(*golden, actual, "");

  // Spot-check the headline result stays the headline result: TOPO-AWARE-P
  // beats BF by roughly the paper's 1.30x on cumulative execution time.
  const double bf =
      actual.at("policies").at("BF").at("cumulative_time_s").as_number();
  const double tp = actual.at("policies")
                        .at("TOPO-AWARE-P")
                        .at("cumulative_time_s")
                        .as_number();
  EXPECT_GT(bf / tp, 1.2);
  EXPECT_EQ(actual.at("policies")
                .at("TOPO-AWARE-P")
                .at("slo_violations")
                .as_int(),
            0);
}

// The decision-path rewrites (bucket FM, incremental TaskUtility, hashed
// cache keys) must reproduce the pinned fig8 schedule through every cache
// configuration: hashed keys (the default, covered above via
// fig8_payload), the legacy string keys, and no cache at all. A drift here
// means the "pure optimization" contract broke for the golden workload.
TEST(GoldenTest, Fig8ScheduleStableAcrossCacheKeyModes) {
  const std::string path = std::string(GTS_GOLDEN_DIR) + "/fig8.json";
  const auto golden = json::parse_file(path);
  ASSERT_TRUE(golden) << golden.error().message;

  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const std::vector<jobgraph::JobRequest> jobs =
      exp::table1_jobs(model, minsky);

  for (const bool postpone : {false, true}) {
    const char* policy = postpone ? "TOPO-AWARE-P" : "TOPO-AWARE";
    const json::Value& want =
        golden->at("policies").at(policy).at("jobs");
    for (const int mode : {0, 1, 2}) {  // hashed / string keys / no cache
      sched::TopoAwareScheduler scheduler({}, postpone);
      if (mode == 1) scheduler.set_string_cache_keys_for_test(true);
      if (mode == 2) scheduler.set_placement_cache_enabled(false);
      sched::DriverOptions options;
      options.record_series = false;
      sched::Driver driver(minsky, model, scheduler, options);
      const sched::DriverReport report = driver.run(jobs);

      const json::Array& expected_jobs = want.as_array();
      ASSERT_EQ(report.recorder.records().size(), expected_jobs.size())
          << policy << " mode " << mode;
      for (size_t i = 0; i < expected_jobs.size(); ++i) {
        const json::Value& expected = expected_jobs[i];
        const cluster::JobRecord& record = report.recorder.records()[i];
        const std::string where = std::string(policy) + " mode " +
                                  std::to_string(mode) + " job " +
                                  std::to_string(i);
        EXPECT_EQ(record.id, expected.at("id").as_int()) << where;
        const json::Array& gpus = expected.at("gpus").as_array();
        ASSERT_EQ(record.gpus.size(), gpus.size()) << where;
        for (size_t g = 0; g < gpus.size(); ++g) {
          EXPECT_EQ(record.gpus[g], gpus[g].as_int()) << where;
        }
        EXPECT_NEAR(record.start, expected.at("start_s").as_number(),
                    kRelTolerance * std::max(1.0, record.start))
            << where;
        EXPECT_NEAR(record.end, expected.at("end_s").as_number(),
                    kRelTolerance * std::max(1.0, record.end))
            << where;
        EXPECT_NEAR(record.placement_utility,
                    expected.at("utility").as_number(), kRelTolerance)
            << where;
        EXPECT_EQ(record.p2p, expected.at("p2p").as_bool()) << where;
      }
    }
  }
}

}  // namespace
}  // namespace gts
