// The observability layer (src/obs/): tracing, metrics registry and
// decision-explain records. The two contracts under test:
//
//   * off by default and zero-cost when off — no events, no instruments,
//     no files;
//   * a pure observer when on — enabling every pillar must not change a
//     single scheduling decision on a seeded trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cluster/recorder.hpp"
#include "exp/scenarios.hpp"
#include "json/json.hpp"
#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/log.hpp"

namespace gts::obs {
namespace {

using topo::builders::MachineShape;

/// Every test starts and ends with observability fully off and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override {
    reset();
    EXPECT_TRUE(util::Logger::instance().configure_from_spec("warn"));
    util::Logger::instance().clear_component_levels();
  }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
  }
};

ObsConfig tracing_config(unsigned categories = kAllCategories) {
  ObsConfig config;
  config.tracing = true;
  config.categories = categories;
  return config;
}

// --- disabled mode -------------------------------------------------------

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  EXPECT_FALSE(tracing_enabled(kSched));
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(explain_enabled());

  const json::Value before = Registry::instance().snapshot_json();
  {
    GTS_TRACE_SPAN(kSched, "off.span");
    GTS_TRACE_INSTANT(kSched, "off.instant");
    GTS_TRACE_COUNTER(kSched, "off.counter", 1.0);
    GTS_METRIC_COUNT("off.count", 1);
    GTS_METRIC_GAUGE_SET("off.gauge", 1.0);
    GTS_METRIC_HISTOGRAM("off.hist", 1.0, latency_bounds_us());
  }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(Registry::instance().snapshot_json(), before);
  EXPECT_EQ(DecisionScope::current(), nullptr);
}

// --- tracing -------------------------------------------------------------

TEST_F(ObsTest, SpanGuardRecordsNestedCompleteEventsWithArgs) {
  ASSERT_TRUE(configure(tracing_config()));
  {
    GTS_TRACE_SPAN(kSched, "outer");
    {
      SpanGuard inner(kSched, "inner");
      inner.arg("job", 7.0).arg("gpus", 2.0);
    }
  }
  EXPECT_EQ(trace_event_count(), 2u);

  const json::Value doc = trace_to_json();
  ASSERT_TRUE(validate_trace_json(doc));
  bool found_inner = false;
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() != "inner") continue;
    found_inner = true;
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("cat").as_string(), "sched");
    EXPECT_TRUE(event.at("dur").is_number());
    EXPECT_DOUBLE_EQ(event.at("args").at("job").as_number(), 7.0);
    EXPECT_DOUBLE_EQ(event.at("args").at("gpus").as_number(), 2.0);
  }
  EXPECT_TRUE(found_inner);
}

TEST_F(ObsTest, CategoryMaskFiltersAtRuntime) {
  ASSERT_TRUE(configure(tracing_config(kSched)));
  EXPECT_TRUE(tracing_enabled(kSched));
  EXPECT_FALSE(tracing_enabled(kFm));
  {
    GTS_TRACE_SPAN(kSched, "kept");
    GTS_TRACE_SPAN(kFm, "dropped");
  }
  ASSERT_EQ(trace_event_count(), 1u);
  const json::Value doc = trace_to_json();
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "M") continue;
    EXPECT_EQ(event.at("name").as_string(), "kept");
  }
}

TEST_F(ObsTest, ThreadsGetDistinctBuffersAndTids) {
  ASSERT_TRUE(configure(tracing_config()));
  GTS_TRACE_INSTANT(kSched, "main.thread");
  std::thread worker([] { GTS_TRACE_INSTANT(kSched, "worker.thread"); });
  worker.join();
  EXPECT_EQ(trace_event_count(), 2u);

  const json::Value doc = trace_to_json();
  ASSERT_TRUE(validate_trace_json(doc));
  long long main_tid = -1;
  long long worker_tid = -1;
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "main.thread") {
      main_tid = event.at("tid").as_int();
    } else if (event.at("name").as_string() == "worker.thread") {
      worker_tid = event.at("tid").as_int();
    }
  }
  EXPECT_GE(main_tid, 0);
  EXPECT_GE(worker_tid, 0);
  EXPECT_NE(main_tid, worker_tid);
}

TEST_F(ObsTest, BeginEndPairsAndSimClockStamping) {
  ASSERT_TRUE(configure(tracing_config()));
  const double sim_now = 12.5;
  {
    SimClockScope clock(&sim_now);
    trace_begin(kDrb, "phase");
    GTS_TRACE_INSTANT(kDrb, "tick");
    trace_end(kDrb, "phase");
  }
  const json::Value doc = trace_to_json();
  ASSERT_TRUE(validate_trace_json(doc));
  int begins = 0;
  int ends = 0;
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    const std::string& phase = event.at("ph").as_string();
    if (phase == "B") ++begins;
    if (phase == "E") ++ends;
    if (event.at("name").as_string() == "tick") {
      EXPECT_DOUBLE_EQ(event.at("args").at("sim_s").as_number(), sim_now);
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST_F(ObsTest, TraceRoundTripsThroughFile) {
  const std::string path = temp_path("obs_trace_roundtrip.json");
  ObsConfig config = tracing_config();
  config.trace_out = path;
  ASSERT_TRUE(configure(config));
  GTS_TRACE_INSTANT(kBench, "file.me");

  const auto written = finalize();
  ASSERT_TRUE(written);
  ASSERT_EQ(written->size(), 1u);
  EXPECT_EQ(written->front(), path);

  const auto parsed = json::parse_file(path);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(validate_trace_json(*parsed));
  std::remove(path.c_str());
}

// --- metrics -------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  const double bounds[] = {1.0, 2.0, 5.0};
  HistogramData h{std::span<const double>(bounds)};
  h.record(1.0);   // on the first edge -> bucket 0
  h.record(1.5);   // inside (1, 2]     -> bucket 1
  h.record(2.0);   // on the edge       -> bucket 1
  h.record(5.0);   // last bounded      -> bucket 2
  h.record(50.0);  // beyond            -> overflow bucket

  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 59.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  // Percentiles are monotone and the overflow bucket reports the max.
  EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 50.0);

  HistogramData other{std::span<const double>(bounds)};
  other.record(1.5);
  h.merge(other);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.bucket_count(1), 3);
}

TEST_F(ObsTest, RegistrySnapshotIsIdenticalAcrossResetReplicas) {
  ObsConfig config;
  config.metrics = true;
  ASSERT_TRUE(configure(config));

  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, topology);

  const auto run_replica = [&] {
    Registry::instance().reset();
    exp::run_policy(sched::Policy::kTopoAwareP, jobs, topology, model, {},
                    /*record_series=*/false);
    json::Value snapshot = Registry::instance().snapshot_json();
    // The latency histograms are wall-clock-derived; everything else is a
    // pure function of the (deterministic) decision sequence.
    snapshot.mutable_object()["histograms"].mutable_object().erase(
        "sched.decision_latency_us");
    snapshot.mutable_object()["histograms"].mutable_object().erase(
        "sched.advance_latency_us");
    return snapshot;
  };

  const json::Value first = run_replica();
  const json::Value second = run_replica();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.at("counters").at("sim.events").as_number(), 0.0);
  EXPECT_GT(first.at("counters").at("sched.placements").as_number(), 0.0);
  EXPECT_GT(first.at("counters").at("drb.bipartitions").as_number(), 0.0);
}

TEST_F(ObsTest, MetricsDocumentValidates) {
  ObsConfig config;
  config.metrics = true;
  ASSERT_TRUE(configure(config));
  GTS_METRIC_COUNT("doc.count", 3);
  GTS_METRIC_GAUGE_SET("doc.gauge", 0.5);
  GTS_METRIC_HISTOGRAM("doc.hist", 42.0, latency_bounds_us());

  const json::Value doc = metrics_document();
  EXPECT_TRUE(validate_metrics_json(doc));
  EXPECT_EQ(doc.at("metrics").at("counters").at("doc.count").as_int(), 3);

  // A malformed document must be rejected.
  json::Value broken = doc;
  broken.mutable_object().erase("metrics");
  EXPECT_FALSE(validate_metrics_json(broken));
}

// --- explain -------------------------------------------------------------

TEST_F(ObsTest, ExplainLogWritesSequencedJsonlRecords) {
  const std::string path = temp_path("obs_explain.jsonl");
  ObsConfig config;
  config.explain_out = path;
  ASSERT_TRUE(configure(config));
  ASSERT_TRUE(explain_enabled());

  for (int job = 0; job < 3; ++job) {
    DecisionScope scope("TEST", job, 2, 0.5, static_cast<double>(job));
    ASSERT_EQ(DecisionScope::current(), &scope);
    ExplainCandidate candidate;
    candidate.gpus = {0, 1};
    candidate.terms.utility = 0.8;
    candidate.source = "test";
    scope.add_candidate(std::move(candidate));
    scope.record().outcome = "placed";
    scope.record().gpus = {0, 1};
    scope.commit();
  }
  EXPECT_EQ(DecisionScope::current(), nullptr);
  ASSERT_TRUE(finalize());

  const auto records = read_explain_jsonl(path);
  ASSERT_TRUE(records);
  ASSERT_EQ(records->size(), 3u);
  for (size_t i = 0; i < records->size(); ++i) {
    const json::Value& record = (*records)[i];
    EXPECT_EQ(record.at("sequence").as_int(), static_cast<long long>(i));
    EXPECT_EQ(record.at("policy").as_string(), "TEST");
    EXPECT_EQ(record.at("outcome").as_string(), "placed");
    EXPECT_EQ(record.at("candidates").as_array().size(), 1u);
  }
  std::remove(path.c_str());
}

// --- logger --------------------------------------------------------------

TEST_F(ObsTest, LoggerComponentOverridesFollowSpec) {
  util::Logger& logger = util::Logger::instance();
  ASSERT_TRUE(logger.configure_from_spec("warn,fm=trace,sched=error"));
  EXPECT_TRUE(logger.enabled(util::LogLevel::kTrace, "fm"));
  EXPECT_FALSE(logger.enabled(util::LogLevel::kWarn, "sched"));
  EXPECT_TRUE(logger.enabled(util::LogLevel::kError, "sched"));
  // Unlisted components fall back to the global threshold.
  EXPECT_FALSE(logger.enabled(util::LogLevel::kInfo, "cluster"));
  EXPECT_TRUE(logger.enabled(util::LogLevel::kWarn, "cluster"));
  // A malformed spec is rejected atomically (no partial application).
  EXPECT_FALSE(logger.configure_from_spec("fm=notalevel"));
  EXPECT_TRUE(logger.enabled(util::LogLevel::kTrace, "fm"));
}

TEST_F(ObsTest, LogLinesMirrorIntoTraceWhenLogCategoryTraced) {
  ASSERT_TRUE(configure(tracing_config()));
  util::Logger::instance().write(util::LogLevel::kWarn, "sched",
                                 "mirrored line");
  bool found = false;
  const json::Value doc = trace_to_json();
  for (const json::Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() != "log.line") continue;
    found = true;
    EXPECT_EQ(event.at("cat").as_string(), "log");
    EXPECT_NE(event.at("args").at("text").as_string().find("mirrored line"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
}

// --- configuration -------------------------------------------------------

TEST_F(ObsTest, CategorySpecRoundTrips) {
  const auto mask = parse_categories("sched,fm");
  ASSERT_TRUE(mask);
  EXPECT_EQ(*mask, static_cast<unsigned>(kSched) | static_cast<unsigned>(kFm));
  EXPECT_EQ(categories_to_string(*mask), "sched,fm");
  const auto all = parse_categories("all");
  ASSERT_TRUE(all);
  EXPECT_EQ(*all, kAllCategories);
  EXPECT_EQ(categories_to_string(*all), "all");
  EXPECT_FALSE(parse_categories("sched,bogus"));
}

// --- the headline property ----------------------------------------------

void expect_identical_records(const cluster::Recorder& with_obs,
                              const cluster::Recorder& without_obs) {
  ASSERT_EQ(with_obs.records().size(), without_obs.records().size());
  for (size_t i = 0; i < with_obs.records().size(); ++i) {
    const cluster::JobRecord& a = with_obs.records()[i];
    const cluster::JobRecord& b = without_obs.records()[i];
    EXPECT_EQ(a.id, b.id) << "record " << i;
    EXPECT_EQ(a.gpus, b.gpus) << "record " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << "record " << i;
    EXPECT_DOUBLE_EQ(a.end, b.end) << "record " << i;
    EXPECT_DOUBLE_EQ(a.placement_utility, b.placement_utility)
        << "record " << i;
    EXPECT_EQ(a.p2p, b.p2p) << "record " << i;
  }
}

// Observability is a pure observer: a seeded 500-job trace on a
// 5-machine cluster schedules identically (same GPUs, same times, same
// utilities, job by job) with every pillar enabled and with all of them
// off.
TEST_F(ObsTest, FullObservabilityDoesNotChangeDecisionsOn500JobTrace) {
  const topo::TopologyGraph topology =
      topo::builders::cluster(5, MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  trace::GeneratorOptions gen;
  gen.job_count = 500;
  gen.seed = 20260806;
  const auto jobs = trace::generate_workload(gen, model, topology);

  // Baseline: everything off (the SetUp reset).
  const sched::DriverReport baseline = exp::run_policy(
      sched::Policy::kTopoAwareP, jobs, topology, model, {},
      /*record_series=*/false);

  const std::string explain_path = temp_path("obs_determinism.jsonl");
  ObsConfig config;
  config.tracing = true;
  config.metrics = true;
  config.explain_out = explain_path;
  ASSERT_TRUE(configure(config));
  const sched::DriverReport observed = exp::run_policy(
      sched::Policy::kTopoAwareP, jobs, topology, model, {},
      /*record_series=*/false);
  ASSERT_TRUE(finalize());

  ASSERT_EQ(baseline.recorder.records().size(), 500u);
  expect_identical_records(observed.recorder, baseline.recorder);
  EXPECT_EQ(observed.recorder.slo_violations(),
            baseline.recorder.slo_violations());

  // And the observer actually observed: spans, metrics and one explain
  // record per decision.
  EXPECT_GT(trace_event_count(), 0u);
  EXPECT_GT(Registry::instance()
                .snapshot_json()
                .at("counters")
                .at("sched.decisions")
                .as_number(),
            0.0);
  const auto records = read_explain_jsonl(explain_path);
  ASSERT_TRUE(records);
  EXPECT_EQ(records->size(),
            static_cast<size_t>(observed.decision_latency_us.count()));
  std::remove(explain_path.c_str());
}

}  // namespace
}  // namespace gts::obs
