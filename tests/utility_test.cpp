#include <gtest/gtest.h>

#include "cluster/state.hpp"
#include "perf/profile.hpp"
#include "sched/utility.hpp"
#include "topo/builders.hpp"

namespace gts::sched {
namespace {

using jobgraph::JobRequest;
using jobgraph::NeuralNet;

class UtilityTest : public ::testing::Test {
 protected:
  topo::TopologyGraph topo_ = topo::builders::power8_minsky();
  perf::DlWorkloadModel model_{perf::CalibrationParams::paper_minsky()};
  cluster::ClusterState state_{topo_, model_};
  UtilityModel utility_{};

  JobRequest job(int id, int gpus, int batch = 4,
                 NeuralNet nn = NeuralNet::kAlexNet) {
    return perf::make_profiled_dl(id, 0.0, nn, batch, gpus, 0.5, model_,
                                  topo_, 700);
  }
};

// --------------------------------------------------------------- Eq. 3 ----

TEST_F(UtilityTest, CommCostSumsPairDistances) {
  EXPECT_DOUBLE_EQ(
      UtilityModel::comm_cost(topo_, std::vector<int>{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(
      UtilityModel::comm_cost(topo_, std::vector<int>{0, 2}), 42.0);
  // {0,1,2}: d(0,1)+d(0,2)+d(1,2) = 1 + 42 + 42.
  EXPECT_DOUBLE_EQ(
      UtilityModel::comm_cost(topo_, std::vector<int>{0, 1, 2}), 85.0);
  EXPECT_DOUBLE_EQ(UtilityModel::comm_cost(topo_, std::vector<int>{0}), 0.0);
}

TEST_F(UtilityTest, BestCommCostIsPack) {
  EXPECT_DOUBLE_EQ(UtilityModel::best_comm_cost(topo_, 2), 1.0);
  // Pack of 4 on the Minsky: 2 intra pairs at 1 + 4 cross pairs at 42.
  EXPECT_DOUBLE_EQ(UtilityModel::best_comm_cost(topo_, 4), 170.0);
}

// --------------------------------------------------------------- Eq. 4 ----

TEST_F(UtilityTest, InterferenceIsOneOnEmptyMachine) {
  const JobRequest j = job(1, 2);
  const double interference =
      utility_.interference(j, std::vector<int>{0, 1}, state_);
  EXPECT_NEAR(interference, 1.0, 1e-9);
}

TEST_F(UtilityTest, InterferenceDropsWithCoRunners) {
  state_.place(job(1, 1, 1), {2}, 0.0);
  const JobRequest j = job(2, 2, 1);
  const double interference =
      utility_.interference(j, std::vector<int>{0, 1}, state_);
  EXPECT_LT(interference, 1.0);
  EXPECT_GT(interference, 0.4);
}

TEST_F(UtilityTest, InterferenceWorseOnSpreadPlacementWithTraffic) {
  state_.place(job(1, 1, 1), {1}, 0.0);
  const JobRequest j = job(2, 2, 1);
  const double pack_interference =
      utility_.interference(j, std::vector<int>{2, 3}, state_);
  const double spread_interference =
      utility_.interference(j, std::vector<int>{0, 2}, state_);
  EXPECT_LT(spread_interference, pack_interference);
}

// ------------------------------------------------------------- combine ----

TEST_F(UtilityTest, CombineIsWeightedGeometricMean) {
  // With full comm weight and equal alphas, combine(u,u,u) == u.
  EXPECT_NEAR(utility_.combine(0.5, 0.5, 0.5, 1.0), 0.5, 1e-12);
  // No communication: the comm factor is ignored entirely.
  EXPECT_NEAR(utility_.combine(0.001, 0.8, 0.8, 0.0), 0.8, 1e-12);
  // Monotone in each factor.
  EXPECT_GT(utility_.combine(0.9, 0.5, 0.5, 1.0),
            utility_.combine(0.5, 0.5, 0.5, 1.0));
}

TEST_F(UtilityTest, CombineBounded) {
  EXPECT_LE(utility_.combine(1.0, 1.0, 1.0, 1.0), 1.0);
  EXPECT_GT(utility_.combine(0.0, 0.0, 0.0, 1.0), 0.0);  // floor guard
}

TEST_F(UtilityTest, NormalizedCommWeight) {
  EXPECT_DOUBLE_EQ(normalized_comm_weight(job(1, 2, 1)), 1.0);   // tiny: 4/4
  EXPECT_DOUBLE_EQ(normalized_comm_weight(job(1, 2, 4)), 0.75);  // small
  EXPECT_DOUBLE_EQ(normalized_comm_weight(job(1, 2, 64)), 0.25); // big
  EXPECT_DOUBLE_EQ(normalized_comm_weight(job(1, 1)), 0.0);  // no edges
}

// ------------------------------------------------------------ evaluate ----

TEST_F(UtilityTest, PackBeatsSpreadForCommunicatingJob) {
  const JobRequest j = job(1, 2, 1);
  const double pack = utility_.placement_utility(j, std::vector<int>{0, 1}, state_);
  const double spread =
      utility_.placement_utility(j, std::vector<int>{0, 2}, state_);
  EXPECT_GT(pack, spread);
  EXPECT_GE(pack, 0.5);  // satisfies the Table 1 multi-GPU threshold
  EXPECT_LT(spread, 0.5);  // would be postponed by TOPO-AWARE-P
}

TEST_F(UtilityTest, SpreadPenaltyShrinksForLowCommJobs) {
  const JobRequest heavy = job(1, 2, 1);   // tiny batch, comm weight 4
  const JobRequest light = job(2, 2, 64);  // big batch, comm weight 1
  const double heavy_gap =
      utility_.placement_utility(heavy, std::vector<int>{0, 1}, state_) -
      utility_.placement_utility(heavy, std::vector<int>{0, 2}, state_);
  const double light_gap =
      utility_.placement_utility(light, std::vector<int>{0, 1}, state_) -
      utility_.placement_utility(light, std::vector<int>{0, 2}, state_);
  EXPECT_GT(heavy_gap, light_gap);
}

TEST_F(UtilityTest, SingleGpuJobUtilityIgnoresComm) {
  const JobRequest j = job(1, 1);
  const UtilityBreakdown eval =
      utility_.evaluate(j, std::vector<int>{0}, state_);
  EXPECT_DOUBLE_EQ(eval.comm_weight, 0.0);
  EXPECT_DOUBLE_EQ(eval.comm_utility, 1.0);
  EXPECT_GE(eval.utility, 0.3);  // always placeable at the 1-GPU threshold
}

TEST_F(UtilityTest, FragmentationRewardsFillingTheMachine) {
  const JobRequest j4 = job(1, 4, 1);
  const UtilityBreakdown eval =
      utility_.evaluate(j4, std::vector<int>{0, 1, 2, 3}, state_);
  EXPECT_DOUBLE_EQ(eval.frag_omega, 0.0);
  EXPECT_DOUBLE_EQ(eval.frag_utility, 1.0);
}

TEST_F(UtilityTest, ObjectiveLowerForBetterPlacements) {
  const JobRequest j = job(1, 2, 1);
  const UtilityBreakdown pack =
      utility_.evaluate(j, std::vector<int>{0, 1}, state_);
  const UtilityBreakdown spread =
      utility_.evaluate(j, std::vector<int>{0, 2}, state_);
  EXPECT_LT(pack.objective, spread.objective);  // Eq. 1 minimization
}

TEST_F(UtilityTest, CustomWeightsShiftEmphasis) {
  // All weight on fragmentation: pack of 2 (leaves socket 1 free) scores
  // below a full 4-GPU fill.
  UtilityModel frag_only(UtilityWeights{0.0, 0.0, 1.0});
  const double two = frag_only.placement_utility(
      job(1, 2, 1), std::vector<int>{0, 1}, state_);
  const double four = frag_only.placement_utility(
      job(2, 4, 1), std::vector<int>{0, 1, 2, 3}, state_);
  EXPECT_GT(four, two);
}

}  // namespace
}  // namespace gts::sched
