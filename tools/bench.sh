#!/usr/bin/env bash
# Sweep-matrix driver: runs the runner-based bench binaries across the
# experiment matrix and collects the versioned BENCH_*.json documents
# (plus the per-scenario METRICS_*.json observability snapshots).
#
#   tools/bench.sh --seeds 8 --threads "$(nproc)"          # default matrix
#   tools/bench.sh --quick --seeds 2 --threads 2           # CI smoke sizes
#   tools/bench.sh --scenario fig10 --seeds 8 --out-dir out
#
# Determinism contract: every file except its "run" block (wall clock,
# events/sec) and "timing" subtrees is byte-identical for any --threads
# value; see DESIGN.md. A scenario failure does not stop the matrix: the
# remaining scenarios still run and the script exits non-zero listing
# every failed scenario.
#
# Perf gate: after the matrix, every produced BENCH_*.json with a
# committed twin under bench/baselines/ goes through
# tools/bench_compare.py; a >15% mean-latency regression fails the run
# (disable with --no-perf-gate).
set -uo pipefail

cd "$(dirname "$0")/.."

SEEDS=8
THREADS="$(nproc)"
OUT_DIR="bench-out"
BUILD_DIR="build"
SCENARIOS=()
QUICK=0
FULL=0
PERF_GATE=1
# Tractable default for Fig. 11; --full restores the paper's 10k/1k scale.
FIG11_MACHINES=50
FIG11_JOBS=500

usage() {
  sed -n '2,10p' "$0" | sed 's/^# \{0,1\}//'
  cat <<EOF
Options:
  --seeds SPEC       replica count N (seeds 1..N) or explicit list 'a,b,c'
                     (default: ${SEEDS})
  --threads N        worker threads per binary, 0 = all cores
                     (default: nproc = $(nproc))
  --out-dir DIR      where BENCH_*.json land (default: ${OUT_DIR})
  --build-dir DIR    cmake build tree with bench/ binaries (default: ${BUILD_DIR})
  --scenario NAME    run one scenario (repeatable); default: the full matrix
                     (fig10 fig11 ablation_alpha ablation_threshold
                      ablation_noise overhead decision_micro advance_micro
                      service_load scale)
  --quick            CI smoke sizes (tiny clusters / job counts)
  --full             paper-scale Fig. 11 (10000 jobs on 1000 machines)
  --no-perf-gate     skip the bench_compare.py baseline comparison
  -h, --help         this text
EOF
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --seeds) SEEDS="$2"; shift 2 ;;
    --threads) THREADS="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --scenario) SCENARIOS+=("$2"); shift 2 ;;
    --quick) QUICK=1; shift ;;
    --full) FULL=1; shift ;;
    --no-perf-gate) PERF_GATE=0; shift ;;
    -h|--help) usage; exit 0 ;;
    *) echo "unknown option: $1" >&2; usage >&2; exit 1 ;;
  esac
done

if [[ ${#SCENARIOS[@]} -eq 0 ]]; then
  SCENARIOS=(fig10 fig11 ablation_alpha ablation_threshold ablation_noise
             overhead decision_micro advance_micro service_load scale)
fi

FIG10_MACHINES=5
FIG10_JOBS=100
OVERHEAD_MACHINES="5,20,50"
OVERHEAD_TASKS="2,4,8"
OVERHEAD_JOBS=40
# Matches the committed baseline's min-of-repeats estimator; a repeats
# mismatch trips bench_compare's config guard on overlapping grids.
OVERHEAD_REPEATS=5
# decision_micro keeps the baseline grid even under --quick: the sweep is
# sub-second, and shrinking it would leave the perf gate with no
# overlapping scenarios against bench/baselines/BENCH_decision_micro.json.
DECISION_MACHINES="5,20,50"
DECISION_TASKS="8"
DECISION_JOBS=200
# advance_micro keeps the baseline grid under --quick for the same
# reason; the event-path sweep is sub-second too.
ADVANCE_MACHINES="5,20,50"
ADVANCE_MULTI="0,25,50"
ADVANCE_JOBS=300
ADVANCE_REPEATS=3
SERVICE_CONNECTIONS=4
SERVICE_JOBS=60
SERVICE_MACHINES=4
# The sharded scale sweep (DESIGN.md section 19). Everything but the
# machine grid stays at the bench_scale defaults so the 500-machine
# scenario config-matches bench/baselines/BENCH_scale.json in the perf
# gate even under --quick.
SCALE_MACHINES="500,1000,2000,5000"
if [[ "$QUICK" -eq 1 ]]; then
  FIG10_MACHINES=3
  FIG10_JOBS=30
  FIG11_MACHINES=8
  FIG11_JOBS=60
  OVERHEAD_MACHINES="2,4,8"
  OVERHEAD_TASKS="2,4,8"
  OVERHEAD_JOBS=15
  OVERHEAD_REPEATS=2
  SERVICE_JOBS=24
  SERVICE_MACHINES=2
  SCALE_MACHINES="500"
elif [[ "$FULL" -eq 1 ]]; then
  FIG11_MACHINES=1000
  FIG11_JOBS=10000
fi

bench_bin() {
  local bin="${BUILD_DIR}/bench/$1"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    return 1
  fi
  echo "$bin"
}

mkdir -p "$OUT_DIR"
started="$(date +%s)"
FAILED=()

run_scenario() {
  local scenario="$1" bin
  local out="${OUT_DIR}/BENCH_${scenario}.json"
  local metrics="${OUT_DIR}/METRICS_${scenario}.json"
  echo "=== ${scenario} -> ${out} (seeds ${SEEDS}, threads ${THREADS}) ==="
  case "$scenario" in
    fig10)
      bin="$(bench_bin bench_fig10_scenario1)" || return 1
      "$bin" --machines "$FIG10_MACHINES" --jobs "$FIG10_JOBS" \
        --seeds "$SEEDS" --threads "$THREADS" --out "$out" \
        --metrics-out "$metrics"
      ;;
    fig11)
      bin="$(bench_bin bench_fig11_scenario2)" || return 1
      "$bin" --machines "$FIG11_MACHINES" --jobs "$FIG11_JOBS" \
        --seeds "$SEEDS" --threads "$THREADS" --out "$out" \
        --metrics-out "$metrics"
      ;;
    ablation_alpha)
      bin="$(bench_bin bench_ablation_alpha)" || return 1
      "$bin" --seeds "$SEEDS" --threads "$THREADS" --out "$out" \
        --metrics-out "$metrics"
      ;;
    ablation_threshold)
      bin="$(bench_bin bench_ablation_threshold)" || return 1
      "$bin" --seeds "$SEEDS" --threads "$THREADS" --out "$out" \
        --metrics-out "$metrics"
      ;;
    ablation_noise)
      bin="$(bench_bin bench_ablation_noise)" || return 1
      "$bin" --seeds "$SEEDS" --threads "$THREADS" --out "$out" \
        --metrics-out "$metrics"
      ;;
    overhead)
      bin="$(bench_bin bench_overhead)" || return 1
      "$bin" --machines "$OVERHEAD_MACHINES" --tasks "$OVERHEAD_TASKS" \
        --jobs "$OVERHEAD_JOBS" --repeats "$OVERHEAD_REPEATS" \
        --seeds "$SEEDS" --threads "$THREADS" \
        --out "$out" --metrics-out "$metrics"
      ;;
    decision_micro)
      # Replicas stay sequential (--threads 1): parallel replicas contend
      # for cores and inflate the stage timers this scenario exists to
      # gate; the whole sweep is sub-second anyway.
      bin="$(bench_bin bench_decision_micro)" || return 1
      "$bin" --machines "$DECISION_MACHINES" --tasks "$DECISION_TASKS" \
        --jobs "$DECISION_JOBS" --seeds "$SEEDS" --threads 1 \
        --out "$out" --metrics-out "$metrics"
      ;;
    advance_micro)
      # Event-path twin of decision_micro: ClusterState place/remove/query
      # stage timers, scoped vs full-recompute oracle. Sequential replicas
      # (--threads 1) for the same timer-hygiene reason.
      bin="$(bench_bin bench_advance_micro)" || return 1
      "$bin" --machines "$ADVANCE_MACHINES" --multi "$ADVANCE_MULTI" \
        --jobs "$ADVANCE_JOBS" --repeats "$ADVANCE_REPEATS" \
        --seeds "$SEEDS" --threads 1 \
        --out "$out" --metrics-out "$metrics"
      ;;
    service_load)
      # Live socket daemon + concurrent clients; replicas stay sequential
      # (--threads 1) because each one spawns its own server and client
      # threads. This scenario also exercises the live-telemetry layer:
      # windowed aggregates + flight recorder on, with the Prometheus
      # exposition and the flight dump written as validated artifacts.
      bin="$(bench_bin bench_service_load)" || return 1
      "$bin" --connections "$SERVICE_CONNECTIONS" --jobs "$SERVICE_JOBS" \
        --machines "$SERVICE_MACHINES" --seeds "$SEEDS" --threads 1 \
        --out "$out" --metrics-out "$metrics" --obs-windows \
        --prom-out "${OUT_DIR}/PROM_service_load.prom" \
        --flight-out "${OUT_DIR}/FLIGHT_service_load.jsonl"
      ;;
    scale)
      # Sharded datacenter sweep; replicas stay sequential (--threads 1)
      # so the flat-latency claim in the timing subtrees is not polluted
      # by replica-level core contention. --shard-threads keeps its
      # byte-identical guarantee, so it can follow the machine's cores.
      bin="$(bench_bin bench_scale)" || return 1
      "$bin" --machines "$SCALE_MACHINES" --seeds "$SEEDS" --threads 1 \
        --out "$out" --metrics-out "$metrics"
      ;;
    *)
      echo "unknown scenario: $scenario" >&2
      return 1
      ;;
  esac
}

for scenario in "${SCENARIOS[@]}"; do
  if ! run_scenario "$scenario"; then
    echo "FAILED: ${scenario}" >&2
    FAILED+=("$scenario")
  fi
done

# Telemetry-artifact validation: the service_load scenario emits a
# Prometheus exposition + flight-recorder dump; both must parse.
for artifact in "${OUT_DIR}"/PROM_*.prom "${OUT_DIR}"/FLIGHT_*.jsonl; do
  [[ -f "$artifact" ]] || continue
  if ! python3 tools/validate_trace.py "$artifact"; then
    echo "FAILED: validate:$(basename "$artifact")" >&2
    FAILED+=("validate:$(basename "$artifact")")
  fi
done

if [[ "$PERF_GATE" -eq 1 ]]; then
  for scenario in "${SCENARIOS[@]}"; do
    baseline="bench/baselines/BENCH_${scenario}.json"
    produced="${OUT_DIR}/BENCH_${scenario}.json"
    [[ -f "$baseline" && -f "$produced" ]] || continue
    echo "=== perf-gate ${scenario}: ${baseline} vs ${produced} ==="
    if ! python3 tools/bench_compare.py --min-value 150 "$baseline" "$produced"; then
      echo "FAILED: perf-gate:${scenario}" >&2
      FAILED+=("perf-gate:${scenario}")
    fi
  done
fi

echo "done in $(( $(date +%s) - started ))s; documents in ${OUT_DIR}/:"
ls -l "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/METRICS_*.json 2>/dev/null || true

if [[ ${#FAILED[@]} -gt 0 ]]; then
  echo "failed scenarios: ${FAILED[*]}" >&2
  exit 1
fi
