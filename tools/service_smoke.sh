#!/usr/bin/env bash
# Scheduler-service end-to-end smoke test (DESIGN.md section 14).
#
# Drives a scripted gts_ctl session against a live gts_schedd daemon:
# 50 jobs submitted over 50+ connections (every gts_ctl call is its own
# connection), one cancelled, virtual time advanced, a snapshot taken,
# the daemon killed with SIGKILL, a new daemon restored from the
# snapshot, and the workload drained. The restored daemon's subsequent
# responses must be BYTE-IDENTICAL to an uninterrupted reference run fed
# the exact same request sequence, and the observability artifacts of
# the graceful runs must pass tools/validate_trace.py.
#
#   tools/service_smoke.sh [--build-dir build] [--out-dir svc-smoke-out]
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
OUT_DIR="svc-smoke-out"
JOBS=50
CANCEL_ID=45

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    -h|--help) sed -n '2,13p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown option: $1" >&2; exit 1 ;;
  esac
done

SCHEDD="${BUILD_DIR}/tools/gts_schedd"
CTL="${BUILD_DIR}/tools/gts_ctl"
for bin in "$SCHEDD" "$CTL"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
done

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

die() {
  echo "FAIL: $*" >&2
  exit 1
}

# Starts a daemon and waits for its readiness line. Args are appended to
# the gts_schedd command line; the socket path and log are globals.
start_daemon() {
  local log="$1"; shift
  "$SCHEDD" --socket "$SOCKET" --machines 2 --policy topo-aware-p "$@" \
    >"$log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    if grep -q "gts_schedd ready" "$log" 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      cat "$log" >&2
      die "daemon exited before becoming ready"
    fi
    sleep 0.05
  done
  cat "$log" >&2
  die "daemon did not become ready"
}

ctl() {
  "$CTL" --socket "$SOCKET" "$@"
}

job_spec() {
  local id="$1"
  local gpus=$(( 1 + id % 2 ))
  local arrival
  arrival="$(awk "BEGIN { printf \"%.1f\", $id * 2.0 }")"
  printf '{"id":%d,"nn":"AlexNet","batch_size":4,"num_gpus":%d,"arrival_time":%s,"min_utility":0.4,"iterations":300}' \
    "$id" "$gpus" "$arrival"
}

# The shared session prefix: submit, cancel one, advance, snapshot.
session_prefix() {
  local snap="$1"
  local i
  for i in $(seq 1 "$JOBS"); do
    ctl submit --job "$(job_spec "$i")" >/dev/null || die "submit $i"
  done
  ctl cancel "$CANCEL_ID" >/dev/null || die "cancel $CANCEL_ID"
  ctl advance --to 30 >/dev/null || die "advance --to 30"
  ctl snapshot --out "$snap" >/dev/null || die "snapshot"
}

# The post-snapshot suffix whose responses must match byte-for-byte:
# more virtual time, every job's status, a full drain, the final listing.
session_suffix() {
  local transcript="$1"
  local i
  {
    ctl advance --to 60 || die "advance --to 60"
    ctl drain || die "drain"
    for i in $(seq 1 "$JOBS"); do
      ctl status "$i" || die "status $i"
    done
    ctl list || die "list"
  } >"$transcript"
}

echo "=== reference run (uninterrupted) ==="
SOCKET="${OUT_DIR}/ref.sock"
start_daemon "${OUT_DIR}/ref_daemon.log" \
  --metrics-out "${OUT_DIR}/METRICS_ref.json" \
  --trace-out "${OUT_DIR}/TRACE_ref.json"
session_prefix "${OUT_DIR}/snap_ref.json"
session_suffix "${OUT_DIR}/transcript_ref.txt"
ctl shutdown >/dev/null || die "reference shutdown"
wait "$DAEMON_PID" || die "reference daemon exit status"
DAEMON_PID=""

echo "=== crash run (SIGKILL after snapshot, then restore) ==="
SOCKET="${OUT_DIR}/crash.sock"
start_daemon "${OUT_DIR}/crash_daemon.log"
session_prefix "${OUT_DIR}/snap_crash.json"
kill -9 "$DAEMON_PID" || die "SIGKILL"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""
rm -f "$SOCKET"

# Same prefix, same virtual clock: the two snapshots must already agree.
cmp "${OUT_DIR}/snap_ref.json" "${OUT_DIR}/snap_crash.json" \
  || die "snapshots of identical request prefixes differ"

start_daemon "${OUT_DIR}/restored_daemon.log" \
  --restore "${OUT_DIR}/snap_crash.json" \
  --metrics-out "${OUT_DIR}/METRICS_restored.json" \
  --trace-out "${OUT_DIR}/TRACE_restored.json" \
  --explain-out "${OUT_DIR}/EXPLAIN_restored.jsonl"
session_suffix "${OUT_DIR}/transcript_restored.txt"
ctl shutdown >/dev/null || die "restored shutdown"
wait "$DAEMON_PID" || die "restored daemon exit status"
DAEMON_PID=""

echo "=== comparing post-snapshot decision transcripts ==="
diff -u "${OUT_DIR}/transcript_ref.txt" "${OUT_DIR}/transcript_restored.txt" \
  || die "restored daemon diverged from the uninterrupted reference run"
echo "transcripts byte-identical ($(wc -l <"${OUT_DIR}/transcript_ref.txt") lines)"

echo "=== validating artifacts ==="
python3 tools/validate_trace.py \
  "${OUT_DIR}/snap_ref.json" \
  "${OUT_DIR}/METRICS_ref.json" \
  "${OUT_DIR}/TRACE_ref.json" \
  "${OUT_DIR}/METRICS_restored.json" \
  "${OUT_DIR}/TRACE_restored.json" \
  "${OUT_DIR}/EXPLAIN_restored.jsonl" \
  || die "artifact validation"

echo "service smoke: OK"
