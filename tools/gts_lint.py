#!/usr/bin/env python3
"""Determinism and convention linter for the scheduler core.

The repo's contract (DESIGN.md section 16) is that every scheduling
decision is a pure function of (cluster state, job stream, seed): the
same trace replayed with any --threads value must produce byte-identical
decisions. This linter token-scans the decision-path directories for the
constructs that historically break that contract:

  unordered-iteration  iterating an unordered_{map,set} (bucket order is
                       implementation-defined and seed-dependent) where
                       the iteration order can feed a decision
  pointer-key          pointer-keyed containers / std::hash of a pointer
                       (address-space layout leaks into ordering)
  wall-clock           wall-clock reads inside the decision path (timing
                       belongs to the obs/ layer, which is allowlisted)
  raw-random           raw rand()/random_device/engine use outside
                       util::Rng (streams must be named and seeded)
  bare-assert          assert() instead of GTS_CHECK/GTS_DCHECK (vanishes
                       under NDEBUG, so release builds skip invariants)

plus repo-wide conventions absorbed from tools/lint.sh:

  pragma-once          every src/ header starts with #pragma once
  using-namespace-std  no 'using namespace std' in headers

A finding on a line ending in  // GTS_LINT_ALLOW(<rule>)  (or preceded
by a comment line carrying the same marker) is suppressed; use this for
reviewed exceptions and say why next to the marker. Known pre-existing
findings live in tools/gts_lint_baseline.json; CI fails on any finding
not in the baseline, and --update-baseline regenerates it.

Usage:
  tools/gts_lint.py                 # human-readable report, exit 1 on findings
  tools/gts_lint.py --json          # machine-readable report on stdout
  tools/gts_lint.py --update-baseline
  tools/gts_lint.py --no-baseline   # report everything, ignore the baseline
  tools/gts_lint.py path...         # restrict the scan (files or dirs)

Requires only the Python standard library.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose code computes or feeds scheduling decisions. The obs/
# and svc/ layers are deliberately absent: observability owns wall-clock
# timing, and the service layer timestamps requests.
DECISION_DIRS = (
    "src/sched",
    "src/partition",
    "src/topo",
    "src/jobgraph",
    "src/cluster",
)

# All first-party C++ (conventions + the raw-random / bare-assert rules,
# which apply beyond the decision path).
SRC_DIRS = ("src",)

SUPPRESS_RE = re.compile(r"GTS_LINT_ALLOW\(\s*([a-z0-9-]+)\s*\)")

RULES = {
    "unordered-iteration": "iteration over an unordered container in the "
    "decision path (bucket order is not deterministic); iterate a sorted "
    "copy or a std::map, or suppress with a comment explaining why order "
    "cannot reach a decision",
    "pointer-key": "pointer-keyed container or pointer hash in the decision "
    "path (addresses vary run to run); key by a stable id",
    "wall-clock": "wall-clock read in the decision path; route timing "
    "through the obs/ layer (obs::wall_now_us) so decisions stay replayable",
    "raw-random": "raw randomness outside util::Rng; draw from a named "
    "util::Rng stream so runs are seed-reproducible",
    "bare-assert": "bare assert() (vanishes under NDEBUG); use "
    "GTS_CHECK/GTS_DCHECK from src/check/check.hpp",
    "pragma-once": "header missing '#pragma once'",
    "using-namespace-std": "'using namespace std' in a header leaks into "
    "every includer",
}

WALL_CLOCK_TOKENS = (
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "gettimeofday",
    "clock_gettime",
    "std::time(",
    "::time(",
    "localtime",
    "gmtime",
)

RAW_RANDOM_RE = re.compile(
    r"(?:^|[^_\w:])(?:rand|srand|rand_r|drand48)\s*\("
    r"|std::random_device"
    r"|std::(?:mt19937|mt19937_64|minstd_rand|default_random_engine)"
)

# Matches assert( but not static_assert( or foo_assert(.
BARE_ASSERT_RE = re.compile(r"(?:^|[^_\w])assert\s*\(")

POINTER_KEY_RE = re.compile(
    r"(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
    r"|std::hash\s*<\s*[\w:<>]+\s*\*\s*>"
)

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*):([^)]*)\)")

BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?begin\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Replaced characters become spaces so that line numbers and column-free
    token matching still line up with the original file.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: R"delim( ... )delim"
                if out and out[-1] == "R" and (len(out) < 2 or not out[-2].isalnum()):
                    match = re.match(r'R"([^(\s]*)\(', text[i - 1 :])
                    if match:
                        delim = match.group(1)
                        end = text.find(")" + delim + '"', i)
                        if end < 0:
                            end = n
                        else:
                            end += len(delim) + 2
                        segment = text[i:end]
                        out.append(
                            "".join("\n" if ch == "\n" else " " for ch in segment)
                        )
                        i = end
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
            continue
        if state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
            continue
        # string / char literals
        if c == "\\":
            out.append("  ")
            i += 2
            continue
        if (state == "string" and c == '"') or (state == "char" and c == "'"):
            state = "code"
            out.append(" ")
            i += 1
            continue
        out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def unordered_container_names(stripped: str) -> set:
    """Names declared (or aliased) as unordered containers in this file."""
    names = set()
    for match in UNORDERED_DECL_RE.finditer(stripped):
        # Bracket-match the template argument list, then take the next
        # identifier as the declared name.
        i = match.end() - 1  # at '<'
        depth = 0
        n = len(stripped)
        while i < n:
            if stripped[i] == "<":
                depth += 1
            elif stripped[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = stripped[i + 1 : i + 200]
        name = re.match(r"\s*&?\s*(\w+)\s*[;={(\[]", tail)
        if name and name.group(1) not in ("final", "const", "return"):
            names.add(name.group(1))
    return names


class Finding:
    __slots__ = ("path", "line", "rule", "snippet")

    def __init__(self, path: str, line: int, rule: str, snippet: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.snippet = snippet.strip()

    def fingerprint(self) -> str:
        normalized = re.sub(r"\s+", " ", self.snippet)
        digest = hashlib.sha256(
            f"{self.path}|{self.rule}|{normalized}".encode()
        ).hexdigest()
        return digest[:16]

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": RULES[self.rule],
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


def is_suppressed(raw_lines, index: int, rule: str) -> bool:
    """GTS_LINT_ALLOW(rule) on the finding line or the line above it."""
    for candidate in (index, index - 1):
        if 0 <= candidate < len(raw_lines):
            for match in SUPPRESS_RE.finditer(raw_lines[candidate]):
                if match.group(1) == rule:
                    return True
    return False


def scan_file(path: str, rel: str, in_decision_path: bool):
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except OSError as error:
        print(f"gts_lint: cannot read {rel}: {error}", file=sys.stderr)
        return [], 0

    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    findings = []
    suppressed = 0
    is_header = rel.endswith((".hpp", ".h"))

    def report(lineno: int, rule: str, snippet: str):
        nonlocal suppressed
        if is_suppressed(raw_lines, lineno - 1, rule):
            suppressed += 1
        else:
            findings.append(Finding(rel, lineno, rule, snippet))

    # --- repo-wide conventions --------------------------------------------
    if is_header and not any(
        line.strip() == "#pragma once" for line in raw_lines
    ):
        report(1, "pragma-once", raw_lines[0] if raw_lines else "")
    for i, line in enumerate(stripped_lines):
        raw = raw_lines[i] if i < len(raw_lines) else ""
        if is_header and "using namespace std" in line:
            report(i + 1, "using-namespace-std", raw)
        if not rel.startswith("src/check/") and BARE_ASSERT_RE.search(line):
            report(i + 1, "bare-assert", raw)
        if not rel.startswith("src/util/rng") and RAW_RANDOM_RE.search(line):
            report(i + 1, "raw-random", raw)

    if not in_decision_path:
        return findings, suppressed

    # --- decision-path rules ----------------------------------------------
    unordered_names = unordered_container_names(stripped)
    for i, line in enumerate(stripped_lines):
        raw = raw_lines[i] if i < len(raw_lines) else ""
        for token in WALL_CLOCK_TOKENS:
            if token in line:
                report(i + 1, "wall-clock", raw)
                break
        if POINTER_KEY_RE.search(line):
            report(i + 1, "pointer-key", raw)
        for match in RANGE_FOR_RE.finditer(line):
            range_expr = match.group(2)
            if "unordered_" in range_expr or any(
                re.search(rf"\b{re.escape(name)}\b", range_expr)
                for name in unordered_names
            ):
                report(i + 1, "unordered-iteration", raw)
        for match in BEGIN_CALL_RE.finditer(line):
            if match.group(1) in unordered_names:
                report(i + 1, "unordered-iteration", raw)
    return findings, suppressed


def collect_files(root: str, restrict):
    """Yields (abs_path, rel_path, in_decision_path) for files to scan."""
    seen = set()
    targets = restrict if restrict else [os.path.join(root, d) for d in SRC_DIRS]
    for target in targets:
        target = os.path.abspath(target)
        if os.path.isfile(target):
            candidates = [target]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames.sort()
                for filename in sorted(filenames):
                    candidates.append(os.path.join(dirpath, filename))
        for path in candidates:
            if not path.endswith((".cpp", ".hpp", ".h", ".cc")):
                continue
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if rel in seen:
                continue
            seen.add(rel)
            in_decision = any(
                rel == d or rel.startswith(d + "/") for d in DECISION_DIRS
            )
            yield path, rel, in_decision


def load_baseline(path: str) -> set:
    if not os.path.exists(path):
        return set()
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"gts_lint: bad baseline {path}: {error}", file=sys.stderr)
        sys.exit(2)
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: str, findings) -> None:
    data = {
        "comment": "Known pre-existing gts_lint findings. New findings must "
        "be fixed or suppressed with GTS_LINT_ALLOW, not baselined, unless "
        "reviewed. Regenerate with: tools/gts_lint.py --update-baseline",
        "findings": [
            {
                "path": f.path,
                "rule": f.rule,
                "fingerprint": f.fingerprint(),
                "snippet": f.snippet,
            }
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="determinism + convention linter (see module docstring)"
    )
    parser.add_argument("paths", nargs="*", help="files or dirs to scan")
    parser.add_argument("--json", action="store_true", help="JSON on stdout")
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "tools", "gts_lint_baseline.json"),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report all findings, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings",
    )
    parser.add_argument("--root", default=REPO_ROOT)
    args = parser.parse_args(argv)

    all_findings = []
    suppressed_total = 0
    files_scanned = 0
    for path, rel, in_decision in collect_files(args.root, args.paths):
        findings, suppressed = scan_file(path, rel, in_decision)
        all_findings.extend(findings)
        suppressed_total += suppressed
        files_scanned += 1

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.update_baseline:
        write_baseline(args.baseline, all_findings)
        print(
            f"gts_lint: baseline written with {len(all_findings)} finding(s)"
        )
        return 0

    baseline = set() if args.no_baseline else load_baseline(args.baseline)
    new_findings = [
        f for f in all_findings if f.fingerprint() not in baseline
    ]
    baselined = len(all_findings) - len(new_findings)

    if args.json:
        json.dump(
            {
                "version": 1,
                "files_scanned": files_scanned,
                "findings": [f.to_json() for f in new_findings],
                "baselined": baselined,
                "suppressed": suppressed_total,
            },
            sys.stdout,
            indent=2,
        )
        sys.stdout.write("\n")
    else:
        for f in new_findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {RULES[f.rule]}")
            print(f"    {f.snippet}")
        print(
            f"gts_lint: {files_scanned} file(s), "
            f"{len(new_findings)} new finding(s), {baselined} baselined, "
            f"{suppressed_total} suppressed"
        )
    return 1 if new_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
