#!/usr/bin/env bash
# Live-telemetry overhead gate (DESIGN.md section 18.5): prove that
# enabling the live layer (sliding windows + flight recorder) costs at
# most 5% mean decision latency.
#
# The measurement is differential, not absolute: shared runners drift
# (this container has shown >1.5x wall-clock swings within one hour), so
# comparing a live run against a committed baseline measures the
# machine, not the layer. Instead the same binary runs three times
# back-to-back on the same runner — off (bracket A), live, off (bracket
# B) — each with the min-of---repeats estimator, and the live run must
# stay within the threshold of AT LEAST ONE off bracket. Under monotone
# drift one bracket is always on the live run's slow side, so only real
# layer overhead (live slower than BOTH brackets by >5%) fails.
#
#   tools/obs_overhead_gate.sh [--build-dir build] [--out-dir obs-gate-out]
#                              [--repeats 5] [--threshold 0.05]
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
OUT_DIR="obs-gate-out"
REPEATS=5
THRESHOLD=0.05
# The committed-baseline grid (bench/baselines/BENCH_overhead.json).
GRID=(--machines 5,20,50 --tasks 2,4,8 --jobs 40 --seeds 42, --threads 1)

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --repeats) REPEATS="$2"; shift 2 ;;
    --threshold) THRESHOLD="$2"; shift 2 ;;
    -h|--help) sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown option: $1" >&2; exit 1 ;;
  esac
done

BENCH="${BUILD_DIR}/bench/bench_overhead"
if [[ ! -x "$BENCH" ]]; then
  echo "missing $BENCH — build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

echo "=== off bracket A (repeats ${REPEATS}) ==="
"$BENCH" "${GRID[@]}" --repeats "$REPEATS" \
  --out "${OUT_DIR}/BENCH_overhead_off_a.json" >/dev/null || exit 1

echo "=== live layer on (windows + flight recorder) ==="
"$BENCH" "${GRID[@]}" --repeats "$REPEATS" \
  --obs-windows --flight-out "${OUT_DIR}/flight_overhead.jsonl" \
  --out "${OUT_DIR}/BENCH_overhead_live.json" >/dev/null || exit 1
python3 tools/validate_trace.py --kind flight \
  "${OUT_DIR}/flight_overhead.jsonl" || exit 1

echo "=== off bracket B (repeats ${REPEATS}) ==="
"$BENCH" "${GRID[@]}" --repeats "$REPEATS" \
  --out "${OUT_DIR}/BENCH_overhead_off_b.json" >/dev/null || exit 1

gate() {
  python3 tools/bench_compare.py --min-value 150 --threshold "$THRESHOLD" \
    "$1" "${OUT_DIR}/BENCH_overhead_live.json"
}

echo "=== gate: live vs off bracket A ==="
if gate "${OUT_DIR}/BENCH_overhead_off_a.json"; then
  echo "PASS: live layer within ${THRESHOLD} of off bracket A"
  exit 0
fi
echo "=== bracket A failed; gate: live vs off bracket B ==="
if gate "${OUT_DIR}/BENCH_overhead_off_b.json"; then
  echo "PASS: live layer within ${THRESHOLD} of off bracket B (drift on A)"
  exit 0
fi
echo "FAIL: live layer exceeds ${THRESHOLD} vs BOTH off brackets" >&2
exit 1
