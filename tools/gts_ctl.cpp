// gts_ctl: command-line client for a running gts_schedd daemon.
//
//   gts_ctl --socket /tmp/gts.sock ping
//   gts_ctl --socket /tmp/gts.sock submit --manifest jobs.json
//   gts_ctl --socket /tmp/gts.sock submit --job '{"nn":"AlexNet",...}'
//   gts_ctl --socket /tmp/gts.sock status 7
//   gts_ctl --socket /tmp/gts.sock cancel 7
//   gts_ctl --tcp 127.0.0.1:7070 list | topology | metrics
//   gts_ctl --socket S advance --to 120.5     (or: advance --all)
//   gts_ctl --socket S snapshot --out snap.json
//   gts_ctl --socket S drain [--no-wait]
//   gts_ctl --socket S shutdown
//
// Prints the verb's result JSON on stdout. Exit codes: 0 success,
// 2 backpressure (retry later), 3 unknown job, 1 anything else.
#include <cstdio>
#include <string>

#include "svc/client.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

int fail(const char* what, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", what, message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("socket", "daemon unix-domain socket path");
  cli.add_option("tcp", "daemon TCP endpoint host:port");
  cli.add_option("manifest", "submit: manifest file path (daemon-side)");
  cli.add_option("job", "submit: inline manifest JSON object");
  cli.add_option("to", "advance: target simulated time (seconds)");
  cli.add_flag("all", "advance: run until idle");
  cli.add_option("out", "snapshot: write the snapshot to this path");
  cli.add_flag("no-wait", "drain: only flip the flag, do not run to idle");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: %s [--socket PATH | --tcp HOST:PORT] "
                 "<verb> [args]\n%s",
                 argv[0], cli.usage(argv[0]).c_str());
    return 1;
  }
  const std::string verb = cli.positional()[0];

  // Connect.
  util::Expected<svc::Client> client = util::Error{"no endpoint"};
  if (cli.has("socket")) {
    client = svc::Client::connect_unix(cli.get("socket"));
  } else if (cli.has("tcp")) {
    const std::string spec = cli.get("tcp");
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      return fail("--tcp", "expects host:port");
    }
    client = svc::Client::connect_tcp(spec.substr(0, colon),
                                      std::stoi(spec.substr(colon + 1)));
  } else {
    return fail("endpoint", "give --socket PATH or --tcp HOST:PORT");
  }
  if (!client) return fail("connect", client.error().message);

  // Build the verb's params.
  json::Value params;
  if (verb == "submit") {
    if (cli.has("manifest") == cli.has("job")) {
      return fail("submit", "give exactly one of --manifest or --job");
    }
    if (cli.has("manifest")) {
      params.set("manifest", cli.get("manifest"));
    } else {
      auto job = json::parse(cli.get("job"));
      if (!job) return fail("--job", job.error().message);
      params.set("job", std::move(*job));
    }
  } else if (verb == "status" || verb == "cancel") {
    if (cli.positional().size() != 2) {
      return fail(verb.c_str(), "expects one job id argument");
    }
    try {
      params.set("id", std::stoi(cli.positional()[1]));
    } catch (...) {
      return fail(verb.c_str(), "job id must be an integer");
    }
  } else if (verb == "advance") {
    if (cli.has("to") == cli.has("all")) {
      return fail("advance", "give exactly one of --to SECONDS or --all");
    }
    if (cli.has("to")) {
      params.set("to", cli.get_double("to"));
    } else {
      params.set("all", true);
    }
  } else if (verb == "snapshot") {
    if (cli.has("out")) params.set("path", cli.get("out"));
  } else if (verb == "drain") {
    if (cli.has("no-wait")) params.set("wait", false);
  }

  const auto response = client->call(verb, std::move(params));
  if (!response) return fail("transport", response.error().message);
  if (!response->ok) {
    std::fprintf(stderr, "error (%s): %s\n",
                 std::string(to_string(response->code)).c_str(),
                 response->message.c_str());
    if (response->code == svc::ErrorCode::kBackpressure) {
      std::fprintf(stderr, "retry_after_ms: %.1f\n",
                   response->retry_after_ms);
      return 2;
    }
    if (response->code == svc::ErrorCode::kNotFound) return 3;
    return 1;
  }
  std::printf("%s\n", json::write(response->result, {.indent = 2}).c_str());
  return 0;
}
