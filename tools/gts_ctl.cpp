// gts_ctl: command-line client for a running gts_schedd daemon.
//
//   gts_ctl --socket /tmp/gts.sock ping
//   gts_ctl --socket /tmp/gts.sock submit --manifest jobs.json
//   gts_ctl --socket /tmp/gts.sock submit --job '{"nn":"AlexNet",...}'
//   gts_ctl --socket /tmp/gts.sock status 7
//   gts_ctl --socket /tmp/gts.sock cancel 7
//   gts_ctl --tcp 127.0.0.1:7070 list | topology | metrics | shards
//   gts_ctl --socket S list --detail          (per-job lifecycle table)
//   gts_ctl --socket S metrics --prom         (Prometheus text format)
//   gts_ctl --socket S dump [--out flight.jsonl]   (flight recorder)
//   gts_ctl --socket S watch list 2           (repeat a verb every 2 s)
//   gts_ctl --socket S advance --to 120.5     (or: advance --all)
//   gts_ctl --socket S snapshot --out snap.json
//   gts_ctl --socket S drain [--no-wait]
//   gts_ctl --socket S shutdown
//
// Prints the verb's result JSON on stdout (metrics --prom and dump print
// their text payloads raw). watch repeats an argument-less read-only verb
// (ping/list/metrics/topology) until interrupted. Exit codes: 0 success,
// 2 backpressure (retry later), 3 unknown job, 1 anything else.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "svc/client.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

int fail(const char* what, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", what, message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("socket", "daemon unix-domain socket path");
  cli.add_option("tcp", "daemon TCP endpoint host:port");
  cli.add_option("manifest", "submit: manifest file path (daemon-side)");
  cli.add_option("job", "submit: inline manifest JSON object");
  cli.add_option("to", "advance: target simulated time (seconds)");
  cli.add_flag("all", "advance: run until idle");
  cli.add_option("out", "snapshot/dump: write the payload to this path");
  cli.add_flag("no-wait", "drain: only flip the flag, do not run to idle");
  cli.add_flag("prom", "metrics: Prometheus text format (metrics_prom verb)");
  cli.add_flag("detail", "list: include the per-job lifecycle table");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s [--socket PATH | --tcp HOST:PORT] <verb> [args]\n"
                 "verbs: ping submit status list cancel topology metrics\n"
                 "       shards dump advance snapshot drain shutdown\n"
                 "       watch <verb> [interval_s]\n%s",
                 argv[0], cli.usage(argv[0]).c_str());
    return 1;
  }
  std::string verb = cli.positional()[0];

  // watch mode: repeat an argument-less read-only verb until interrupted.
  bool watch = false;
  double watch_interval_s = 2.0;
  if (verb == "watch") {
    if (cli.positional().size() < 2) {
      return fail("watch", "expects a verb to repeat, e.g. watch list 2");
    }
    watch = true;
    verb = cli.positional()[1];
    if (cli.positional().size() >= 3) {
      try {
        watch_interval_s = std::stod(cli.positional()[2]);
      } catch (...) {
        return fail("watch", "interval must be a number (seconds)");
      }
      if (watch_interval_s <= 0.0) {
        return fail("watch", "interval must be > 0");
      }
    }
    if (verb == "submit" || verb == "status" || verb == "cancel" ||
        verb == "advance" || verb == "snapshot" || verb == "drain" ||
        verb == "shutdown") {
      return fail("watch",
                  "only read-only argument-less verbs can be watched "
                  "(ping, list, metrics, topology, shards)");
    }
  }

  // Connect.
  util::Expected<svc::Client> client = util::Error{"no endpoint"};
  if (cli.has("socket")) {
    client = svc::Client::connect_unix(cli.get("socket"));
  } else if (cli.has("tcp")) {
    const std::string spec = cli.get("tcp");
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      return fail("--tcp", "expects host:port");
    }
    client = svc::Client::connect_tcp(spec.substr(0, colon),
                                      std::stoi(spec.substr(colon + 1)));
  } else {
    return fail("endpoint", "give --socket PATH or --tcp HOST:PORT");
  }
  if (!client) return fail("connect", client.error().message);

  // Build the verb's params.
  json::Value params;
  if (verb == "submit") {
    if (cli.has("manifest") == cli.has("job")) {
      return fail("submit", "give exactly one of --manifest or --job");
    }
    if (cli.has("manifest")) {
      params.set("manifest", cli.get("manifest"));
    } else {
      auto job = json::parse(cli.get("job"));
      if (!job) return fail("--job", job.error().message);
      params.set("job", std::move(*job));
    }
  } else if (verb == "status" || verb == "cancel") {
    if (cli.positional().size() != 2) {
      return fail(verb.c_str(), "expects one job id argument");
    }
    try {
      params.set("id", std::stoi(cli.positional()[1]));
    } catch (...) {
      return fail(verb.c_str(), "job id must be an integer");
    }
  } else if (verb == "advance") {
    if (cli.has("to") == cli.has("all")) {
      return fail("advance", "give exactly one of --to SECONDS or --all");
    }
    if (cli.has("to")) {
      params.set("to", cli.get_double("to"));
    } else {
      params.set("all", true);
    }
  } else if (verb == "snapshot") {
    if (cli.has("out")) params.set("path", cli.get("out"));
  } else if (verb == "drain") {
    if (cli.has("no-wait")) params.set("wait", false);
  } else if (verb == "list") {
    if (cli.has("detail")) params.set("detail", true);
  } else if (verb == "metrics" && cli.has("prom")) {
    verb = "metrics_prom";
  } else if (verb == "dump") {
    if (cli.has("out")) params.set("path", cli.get("out"));
  }

  while (true) {
    const auto response = client->call(verb, params);
    if (!response) return fail("transport", response.error().message);
    if (!response->ok) {
      std::fprintf(stderr, "error (%s): %s\n",
                   std::string(to_string(response->code)).c_str(),
                   response->message.c_str());
      if (response->code == svc::ErrorCode::kBackpressure) {
        std::fprintf(stderr, "retry_after_ms: %.1f\n",
                     response->retry_after_ms);
        return 2;
      }
      if (response->code == svc::ErrorCode::kNotFound) return 3;
      return 1;
    }
    if (watch && isatty(STDOUT_FILENO) != 0) {
      std::printf("\033[2J\033[H");  // clear + home, like watch(1)
    }
    // Text payloads print raw; everything else pretty-prints as JSON.
    if (verb == "metrics_prom") {
      std::fputs(response->result.at("text").as_string().c_str(), stdout);
    } else if (verb == "dump" && response->result.contains("text")) {
      std::fputs(response->result.at("text").as_string().c_str(), stdout);
    } else {
      std::printf("%s\n",
                  json::write(response->result, {.indent = 2}).c_str());
    }
    std::fflush(stdout);
    if (!watch) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(watch_interval_s));
  }
  return 0;
}
