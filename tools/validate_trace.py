#!/usr/bin/env python3
"""Validate observability artifacts (stdlib only).

Checks the document kinds src/obs/, src/svc/, and src/runner/ emit:

  * Chrome trace_event JSON (--trace-out): loadable by Perfetto / chrome://
    tracing — a traceEvents array whose events carry name/ph/pid/tid, ts on
    non-metadata events, dur on complete ('X') events, and balanced B/E
    nesting per thread;
  * metrics registry snapshots (--metrics-out): schema_version 1 documents
    with counters/gauges/histograms sections, each histogram having
    len(counts) == len(bounds) + 1 and count == sum(counts);
  * decision-explain JSONL (--explain-out): one JSON object per line with
    the per-decision fields, candidate utility-term breakdowns, and
    strictly increasing sequence numbers;
  * scheduler-service snapshots (gts_schedd --snapshot / the `snapshot`
    verb): schema_version 1, kind "svc_snapshot", running/waiting/pending
    job sections carrying manifests, consistent GPU assignments;
  * BENCH sweep documents (bench/* --out): schema_version 1 with
    scenario x seed replicas and per-scenario aggregate stat blocks;
  * Prometheus text exposition (the `metrics_prom` verb / --prom-port
    scrape): 0.0.4 grammar — every sample family declared by a # TYPE
    line, histogram buckets cumulative and monotone with the +Inf bucket
    equal to the _count sample;
  * flight-recorder dumps (the `dump` verb / crash handler): JSONL with
    kind "flight", known event names, and strictly increasing sequence
    numbers.

Usage:
  tools/validate_trace.py trace.json [more.json ...]
  tools/validate_trace.py --kind metrics metrics.json
  tools/validate_trace.py --kind explain decisions.jsonl
  tools/validate_trace.py --kind snapshot snap.json
  tools/validate_trace.py --kind bench bench.json
  tools/validate_trace.py --kind prom scrape.prom
  tools/validate_trace.py --kind flight flight.jsonl
  tools/validate_trace.py --kind auto out/*.json   # sniff per file (default)
"""

import argparse
import json
import math
import re
import sys


def fail(path, message):
    raise ValueError(f"{path}: {message}")


def validate_trace(path, doc):
    if not isinstance(doc, dict):
        fail(path, "trace document must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "missing or empty traceEvents array")
    open_spans = {}  # tid -> stack of names
    counts = {"X": 0, "B": 0, "E": 0, "i": 0, "C": 0, "M": 0}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(path, f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(path, f"{where}: missing '{key}'")
        phase = event["ph"]
        if not isinstance(phase, str) or len(phase) != 1:
            fail(path, f"{where}: bad phase {phase!r}")
        counts[phase] = counts.get(phase, 0) + 1
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            fail(path, f"{where}: non-metadata event missing numeric ts")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            fail(path, f"{where}: complete event missing numeric dur")
        stack = open_spans.setdefault(event["tid"], [])
        if phase == "B":
            stack.append(event["name"])
        elif phase == "E":
            if not stack:
                fail(path, f"{where}: 'E' without matching 'B' on tid "
                           f"{event['tid']}")
            stack.pop()
    for tid, stack in open_spans.items():
        if stack:
            fail(path, f"unclosed 'B' events on tid {tid}: {stack}")
    return (f"trace ok: {len(events)} events "
            f"(X={counts['X']} B/E={counts['B']}/{counts['E']} "
            f"i={counts['i']} C={counts['C']} M={counts['M']})")


def validate_histogram(path, name, hist):
    where = f"histograms['{name}']"
    for key in ("count", "sum", "mean", "min", "max", "p50", "p95",
                "bounds", "counts"):
        if key not in hist:
            fail(path, f"{where}: missing '{key}'")
    bounds, counts = hist["bounds"], hist["counts"]
    if len(counts) != len(bounds) + 1:
        fail(path, f"{where}: len(counts) must be len(bounds)+1")
    if sorted(bounds) != bounds:
        fail(path, f"{where}: bounds not sorted")
    if sum(counts) != hist["count"]:
        fail(path, f"{where}: count != sum(counts)")
    if any(c < 0 for c in counts):
        fail(path, f"{where}: negative bucket count")


def validate_metrics(path, doc):
    if not isinstance(doc, dict):
        fail(path, "metrics document must be an object")
    if doc.get("schema_version") != 1:
        fail(path, f"bad schema_version {doc.get('schema_version')!r}")
    if doc.get("kind") != "metrics":
        fail(path, f"bad kind {doc.get('kind')!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(path, "missing metrics object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(path, f"missing metrics.{section} object")
    for name, value in metrics["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            fail(path, f"counters['{name}']: bad value {value!r}")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(path, f"gauges['{name}']: bad value {value!r}")
    for name, hist in metrics["histograms"].items():
        validate_histogram(path, name, hist)
    return (f"metrics ok: {len(metrics['counters'])} counters, "
            f"{len(metrics['gauges'])} gauges, "
            f"{len(metrics['histograms'])} histograms")


def validate_explain(path, lines):
    last_sequence = -1
    records = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"line {number}: {error}")
        where = f"line {number}"
        for key in ("sequence", "sim_time", "policy", "job_id", "num_gpus",
                    "min_utility", "outcome", "gpus", "chosen", "satisfied",
                    "decision_us", "candidates"):
            if key not in record:
                fail(path, f"{where}: missing '{key}'")
        if record["sequence"] <= last_sequence:
            fail(path, f"{where}: sequence not increasing")
        last_sequence = record["sequence"]
        if record["outcome"] not in ("placed", "postponed", "declined"):
            fail(path, f"{where}: bad outcome {record['outcome']!r}")
        for slot, candidate in enumerate([*record["candidates"],
                                          {"gpus": record["gpus"],
                                           "source": "chosen",
                                           "terms": record["chosen"]}]):
            cwhere = f"{where}: candidates[{slot}]"
            for key in ("gpus", "terms", "source"):
                if key not in candidate:
                    fail(path, f"{cwhere}: missing '{key}'")
            terms = candidate["terms"]
            if "utility" not in terms or "has_breakdown" not in terms:
                fail(path, f"{cwhere}: terms missing utility/has_breakdown")
            if terms["has_breakdown"]:
                # The Eq. 3/4/5 decomposition: communication, interference
                # and fragmentation terms.
                for key in ("comm_cost", "comm_utility", "interference",
                            "frag_omega", "frag_utility", "comm_weight"):
                    if key not in terms:
                        fail(path, f"{cwhere}: breakdown missing '{key}'")
        if record["outcome"] == "placed" and not record["gpus"]:
            fail(path, f"{where}: placed decision with empty gpus")
        records += 1
    if records == 0:
        fail(path, "no explain records")
    return f"explain ok: {records} records"


def validate_snapshot(path, doc):
    if not isinstance(doc, dict):
        fail(path, "snapshot document must be an object")
    if doc.get("schema_version") != 1:
        fail(path, f"bad schema_version {doc.get('schema_version')!r}")
    if doc.get("kind") != "svc_snapshot":
        fail(path, f"bad kind {doc.get('kind')!r}")
    now = doc.get("now")
    if not isinstance(now, (int, float)) or now < 0:
        fail(path, f"bad now {now!r}")
    if not isinstance(doc.get("capacity_version"), (int, float)):
        fail(path, "missing numeric capacity_version")
    if not isinstance(doc.get("draining"), bool):
        fail(path, "missing boolean draining")
    if not isinstance(doc.get("next_auto_id"), (int, float)):
        fail(path, "missing numeric next_auto_id")
    for section in ("running", "waiting", "pending", "history"):
        if not isinstance(doc.get(section), list):
            fail(path, f"missing {section} array")
    allocated = set()
    for index, entry in enumerate(doc["running"]):
        where = f"running[{index}]"
        if not isinstance(entry.get("manifest"), dict):
            fail(path, f"{where}: missing manifest object")
        gpus = entry.get("gpus")
        if (not isinstance(gpus, list) or not gpus or
                not all(isinstance(g, int) and g >= 0 for g in gpus)):
            fail(path, f"{where}: bad gpus {gpus!r}")
        overlap = allocated.intersection(gpus)
        if overlap:
            fail(path, f"{where}: GPUs double-allocated: {sorted(overlap)}")
        allocated.update(gpus)
        start = entry.get("start_time")
        if not isinstance(start, (int, float)) or start > now + 1e-9:
            fail(path, f"{where}: start_time {start!r} after now {now}")
        progress = entry.get("progress_iterations")
        if not isinstance(progress, (int, float)) or progress < 0:
            fail(path, f"{where}: bad progress_iterations {progress!r}")
    for section in ("waiting", "pending"):
        for index, entry in enumerate(doc[section]):
            if not isinstance(entry.get("manifest"), dict):
                fail(path, f"{section}[{index}]: missing manifest object")
    for index, entry in enumerate(doc["history"]):
        where = f"history[{index}]"
        if not isinstance(entry.get("id"), (int, float)):
            fail(path, f"{where}: missing numeric id")
        if entry.get("state") not in ("finished", "cancelled", "rejected"):
            fail(path, f"{where}: bad state {entry.get('state')!r}")
    return (f"snapshot ok: now={now} running={len(doc['running'])} "
            f"waiting={len(doc['waiting'])} pending={len(doc['pending'])} "
            f"history={len(doc['history'])}")


_STAT_KEYS = ("count", "mean", "stddev", "min", "max", "p50", "p95")


def _require_number(path, where, value, minimum=None):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{where}: expected number, got {value!r}")
    if minimum is not None and value < minimum:
        fail(path, f"{where}: expected >= {minimum}, got {value!r}")


def _validate_scale_payload(path, where, payload):
    """BENCH_scale replicas: router counters, per-shard rows and the
    router timing subtree next to the per-decision histogram."""
    sharded = payload["sharded"]
    if not isinstance(sharded, dict):
        fail(path, f"{where}: 'sharded' must be an object")
    router = sharded.get("router")
    if not isinstance(router, dict):
        fail(path, f"{where}: sharded.router missing")
    for key in ("routed", "filtered", "exhausted"):
        _require_number(path, f"{where}: sharded.router.{key}",
                        router.get(key), minimum=0)
    per_shard = sharded.get("per_shard")
    if not isinstance(per_shard, list) or not per_shard:
        fail(path, f"{where}: sharded.per_shard missing or empty")
    if isinstance(payload.get("shards"), (int, float)):
        if len(per_shard) != int(payload["shards"]):
            fail(path, f"{where}: per_shard has {len(per_shard)} rows for "
                       f"{payload['shards']} shards")
    for index, row in enumerate(per_shard):
        rwhere = f"{where}: sharded.per_shard[{index}]"
        if not isinstance(row, dict):
            fail(path, f"{rwhere}: expected object")
        if row.get("shard") != index:
            fail(path, f"{rwhere}: shard id {row.get('shard')!r} != {index}")
        _require_number(path, f"{rwhere}.machines", row.get("machines"),
                        minimum=1)
        for key in ("gpus", "decisions", "placements", "routed"):
            _require_number(path, f"{rwhere}.{key}", row.get(key), minimum=0)
    cell_routed = sum(row["routed"] for row in per_shard)
    if cell_routed != router["routed"]:
        fail(path, f"{where}: per-shard routed sum {cell_routed} != "
                   f"router.routed {router['routed']}")
    timing = sharded.get("timing")
    if not isinstance(timing, dict):
        fail(path, f"{where}: sharded.timing missing")
    for name in ("decision_latency_us", "route_latency_us"):
        if name not in timing:
            fail(path, f"{where}: sharded.timing.{name} missing")
        validate_histogram(path, f"{where}: sharded.timing.{name}",
                           timing[name])
    # Per-advance split (event-path overhaul): optional so baselines that
    # predate it still validate, but when present it must be a histogram.
    if "advance_latency_us" in timing:
        validate_histogram(path, f"{where}: sharded.timing.advance_latency_us",
                           timing["advance_latency_us"])
    # The unsharded oracle only runs up to --oracle-max machines; when it
    # did, the placement-quality delta must ride along.
    if "unsharded" in payload:
        oracle = payload["unsharded"]
        if not isinstance(oracle, dict):
            fail(path, f"{where}: 'unsharded' must be an object")
        oracle_timing = oracle.get("timing")
        if (not isinstance(oracle_timing, dict) or
                "decision_latency_us" not in oracle_timing):
            fail(path, f"{where}: unsharded.timing.decision_latency_us "
                       f"missing")
        validate_histogram(
            path, f"{where}: unsharded.timing.decision_latency_us",
            oracle_timing["decision_latency_us"])
        delta = payload.get("delta")
        if not isinstance(delta, dict):
            fail(path, f"{where}: oracle ran but 'delta' missing")
        for key in ("utility_mean", "jct_mean_s", "makespan_s"):
            _require_number(path, f"{where}: delta.{key}", delta.get(key))
        if isinstance(oracle_timing, dict) and \
                "advance_latency_us" in oracle_timing:
            validate_histogram(
                path, f"{where}: unsharded.timing.advance_latency_us",
                oracle_timing["advance_latency_us"])


def _validate_advance_micro_payload(path, where, payload):
    """BENCH_advance_micro replicas: event counts plus the scoped and
    full-recompute stage histograms and the throughput scalars."""
    _require_number(path, f"{where}: machines", payload.get("machines"),
                    minimum=1)
    multi_pct = payload.get("multi_pct")
    _require_number(path, f"{where}: multi_pct", multi_pct, minimum=0)
    if multi_pct > 100:
        fail(path, f"{where}: multi_pct {multi_pct!r} is not a percentage")
    for key in ("places", "removes", "queries", "events"):
        _require_number(path, f"{where}: {key}", payload.get(key), minimum=0)
    if payload["events"] != payload["places"] + payload["removes"]:
        fail(path, f"{where}: events {payload['events']!r} != places + "
                   f"removes")
    timing = payload.get("timing")
    if not isinstance(timing, dict):
        fail(path, f"{where}: timing subtree missing")
    for name in ("place_us", "remove_us", "query_us",
                 "full_place_us", "full_remove_us", "full_query_us"):
        if name not in timing:
            fail(path, f"{where}: timing.{name} missing")
        validate_histogram(path, f"{where}: timing.{name}", timing[name])
    for name in ("events_per_sec", "full_events_per_sec", "speedup"):
        _require_number(path, f"{where}: timing.{name}", timing.get(name),
                        minimum=0)


def validate_bench(path, doc):
    if not isinstance(doc, dict):
        fail(path, "bench document must be an object")
    if doc.get("schema_version") != 1:
        fail(path, f"bad schema_version {doc.get('schema_version')!r}")
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        fail(path, "missing name")
    scenarios = doc.get("scenarios")
    seeds = doc.get("seeds")
    replicas = doc.get("replicas")
    if not isinstance(scenarios, list) or not scenarios:
        fail(path, "missing scenarios array")
    if not isinstance(seeds, list) or not seeds:
        fail(path, "missing seeds array")
    if not isinstance(replicas, list) or not replicas:
        fail(path, "missing replicas array")
    if len(replicas) != len(scenarios) * len(seeds):
        fail(path, f"expected {len(scenarios)}x{len(seeds)} replicas, "
                   f"got {len(replicas)}")
    # Execution-config fields (batched admission / parallel scoring):
    # optional, but when present they must be sane and agree between the
    # run metadata and every replica payload — bench_compare.py keys its
    # config guard on them.
    metadata = doc.get("metadata")
    metadata = metadata if isinstance(metadata, dict) else {}
    for key, minimum in (("batch_max", 1), ("parse_threads", 0),
                         ("worker_threads", 0), ("scoring_threads", 0)):
        if key in metadata:
            value = metadata[key]
            if (not isinstance(value, (int, float)) or
                    isinstance(value, bool) or value < minimum):
                fail(path, f"metadata['{key}']: expected number >= "
                           f"{minimum}, got {value!r}")
    for key in ("parallel_scoring", "pipeline"):
        if key in metadata and not isinstance(metadata[key], bool):
            fail(path, f"metadata['{key}']: expected bool, got "
                       f"{metadata[key]!r}")
    for index, replica in enumerate(replicas):
        where = f"replicas[{index}]"
        if replica.get("scenario") not in scenarios:
            fail(path, f"{where}: unknown scenario "
                       f"{replica.get('scenario')!r}")
        if replica.get("seed") not in seeds:
            fail(path, f"{where}: unknown seed {replica.get('seed')!r}")
        payload = replica.get("payload")
        if not isinstance(payload, dict):
            fail(path, f"{where}: missing payload object")
        for key in ("batch_max", "worker_threads"):
            if key in payload:
                value = payload[key]
                if (not isinstance(value, (int, float)) or
                        isinstance(value, bool) or value < 0):
                    fail(path, f"{where}: payload['{key}']: expected "
                               f"non-negative number, got {value!r}")
                if key in metadata and value != metadata[key]:
                    fail(path, f"{where}: payload['{key}'] {value!r} "
                               f"disagrees with metadata {metadata[key]!r}")
        if "pipeline" in payload:
            value = payload["pipeline"]
            if not isinstance(value, bool):
                fail(path, f"{where}: payload['pipeline']: expected bool, "
                           f"got {value!r}")
            if "pipeline" in metadata and value != metadata["pipeline"]:
                fail(path, f"{where}: payload['pipeline'] {value!r} "
                           f"disagrees with metadata "
                           f"{metadata['pipeline']!r}")
        if "sharded" in payload:
            _validate_scale_payload(path, where, payload)
        if metadata.get("experiment") == "advance_micro":
            _validate_advance_micro_payload(path, where, payload)
    aggregates = doc.get("aggregates")
    if not isinstance(aggregates, dict):
        fail(path, "missing aggregates object")
    for scenario, fields in aggregates.items():
        if scenario not in scenarios:
            fail(path, f"aggregates: unknown scenario {scenario!r}")
        for field, stats in fields.items():
            for key in _STAT_KEYS:
                if not isinstance(stats.get(key), (int, float)):
                    fail(path, f"aggregates['{scenario}']['{field}']: "
                               f"missing numeric '{key}'")
    return (f"bench ok: '{doc['name']}' {len(scenarios)} scenario(s) x "
            f"{len(seeds)} seed(s), {len(replicas)} replicas")


_PROM_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_PROM_SAMPLE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*\Z")
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # accepts "NaN" too


def _prom_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate_prom(path, lines):
    """Prometheus text-format 0.0.4 grammar + histogram monotonicity."""
    types = {}       # family -> declared type
    helps = set()
    samples = 0
    # (family, frozen non-le labels) -> list of (le, value) in file order,
    # and the same key -> _count value, for the cumulative cross-check.
    buckets = {}
    counts = {}
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            name = parts[2]
            if not _PROM_NAME.match(name):
                fail(path, f"{where}: bad metric name {name!r}")
            if parts[1] == "HELP":
                if name in helps:
                    fail(path, f"{where}: duplicate HELP for {name}")
                helps.add(name)
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    fail(path, f"{where}: bad TYPE {kind!r} for {name}")
                if name in types:
                    fail(path, f"{where}: duplicate TYPE for {name}")
                types[name] = kind
            continue
        match = _PROM_SAMPLE.match(line)
        if not match:
            fail(path, f"{where}: not a sample line: {line!r}")
        name = match.group("name")
        try:
            value = _prom_value(match.group("value"))
        except ValueError:
            fail(path, f"{where}: bad sample value {match.group('value')!r}")
        family = _prom_family(name)
        declared = types.get(family, types.get(name))
        if declared is None:
            fail(path, f"{where}: sample {name} has no preceding # TYPE")
        labels = dict(_PROM_LABEL.findall(match.group("labels") or ""))
        if name.endswith("_bucket") and declared == "histogram":
            if "le" not in labels:
                fail(path, f"{where}: histogram bucket without le label")
            try:
                le = _prom_value(labels["le"])
            except ValueError:
                fail(path, f"{where}: bad le value {labels['le']!r}")
            key = (family,
                   tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le")))
            buckets.setdefault(key, []).append((number, le, value))
        elif name.endswith("_count") and declared == "histogram":
            key = (family, tuple(sorted(labels.items())))
            counts[key] = (number, value)
        elif declared == "counter" and value < 0:
            fail(path, f"{where}: negative counter {name}")
        samples += 1
    histograms = 0
    for (family, label_key), series in buckets.items():
        where = f"histogram {family}"
        last_le, last_value = -math.inf, -math.inf
        for number, le, value in series:
            if le <= last_le:
                fail(path, f"{where}: le not increasing at line {number}")
            if value < last_value:
                fail(path, f"{where}: cumulative bucket count decreases "
                           f"at line {number}")
            last_le, last_value = le, value
        if not math.isinf(last_le):
            fail(path, f"{where}: missing le=\"+Inf\" bucket")
        count = counts.get((family, label_key))
        if count is None:
            fail(path, f"{where}: missing _count sample")
        if count[1] != last_value:
            fail(path, f"{where}: +Inf bucket {last_value} != _count "
                       f"{count[1]} (line {count[0]})")
        histograms += 1
    if samples == 0:
        fail(path, "no samples")
    return (f"prom ok: {samples} samples, {len(types)} families, "
            f"{histograms} histogram series")


_FLIGHT_EVENTS = ("admission", "decision", "postponement", "batch",
                  "backpressure", "snapshot", "error")


def validate_flight(path, lines):
    """Flight-recorder JSONL: schema + strictly increasing sequence."""
    last_sequence = -1
    records = 0
    events = {}
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {number}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"{where}: {error}")
        if record.get("kind") != "flight":
            fail(path, f"{where}: bad kind {record.get('kind')!r}")
        for key in ("seq", "event", "wall_us", "sim_s", "job", "a", "b",
                    "detail"):
            if key not in record:
                fail(path, f"{where}: missing '{key}'")
        if record["event"] not in _FLIGHT_EVENTS:
            fail(path, f"{where}: unknown event {record['event']!r}")
        sequence = record["seq"]
        if not isinstance(sequence, int) or sequence <= last_sequence:
            fail(path, f"{where}: sequence {sequence!r} not increasing")
        last_sequence = sequence
        if (not isinstance(record["wall_us"], (int, float)) or
                record["wall_us"] < 0):
            fail(path, f"{where}: bad wall_us {record['wall_us']!r}")
        if not isinstance(record["job"], int):
            fail(path, f"{where}: bad job {record['job']!r}")
        events[record["event"]] = events.get(record["event"], 0) + 1
        records += 1
    if records == 0:
        fail(path, "no flight records")
    summary = " ".join(f"{k}={v}" for k, v in sorted(events.items()))
    return f"flight ok: {records} events ({summary})"


def _sniff_jsonl(text):
    """flight vs explain: peek at the first record's "kind"."""
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return "explain"
        if isinstance(record, dict) and record.get("kind") == "flight":
            return "flight"
        return "explain"
    return "explain"


def sniff_kind(path, text):
    if path.endswith(".prom"):
        return "prom"
    if path.endswith(".jsonl"):
        return _sniff_jsonl(text)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        stripped = text.lstrip()
        if stripped and not stripped.startswith(("{", "[")):
            return "prom"  # text exposition, not JSON at all
        return _sniff_jsonl(text)  # JSONL files are not one JSON document
    if isinstance(doc, dict) and doc.get("kind") == "metrics":
        return "metrics"
    if isinstance(doc, dict) and doc.get("kind") == "svc_snapshot":
        return "snapshot"
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace"
    if isinstance(doc, dict) and "replicas" in doc and "name" in doc:
        return "bench"
    fail(path, "cannot determine document kind "
               "(trace/metrics/explain/snapshot/bench/prom/flight)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind", choices=("auto", "trace", "metrics",
                                           "explain", "snapshot", "bench",
                                           "prom", "flight"),
                        default="auto")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    status = 0
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            kind = args.kind if args.kind != "auto" else sniff_kind(path, text)
            if kind == "trace":
                message = validate_trace(path, json.loads(text))
            elif kind == "metrics":
                message = validate_metrics(path, json.loads(text))
            elif kind == "snapshot":
                message = validate_snapshot(path, json.loads(text))
            elif kind == "bench":
                message = validate_bench(path, json.loads(text))
            elif kind == "prom":
                message = validate_prom(path, text.splitlines())
            elif kind == "flight":
                message = validate_flight(path, text.splitlines())
            else:
                message = validate_explain(path, text.splitlines())
            print(f"{path}: {message}")
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"FAIL {error}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
