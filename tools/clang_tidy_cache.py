#!/usr/bin/env python3
"""Content-hash caching wrapper around clang-tidy.

clang-tidy over the full tree costs minutes; most CI runs touch a handful
of files. This wrapper keys each translation unit on a digest of

  * the clang-tidy version string,
  * the .clang-tidy configuration,
  * the source file's bytes, and
  * a global digest of every header under src/ (any header edit can
    change any TU's diagnostics, so header changes invalidate the world —
    coarse but sound),

and skips files whose digest already has a success marker in the cache
directory. Only clean runs are cached: a file with diagnostics is re-run
(and re-reported) every time until fixed.

Usage:
  tools/clang_tidy_cache.py -p <build-dir> [--cache-dir DIR] [--jobs N]
                            [file...]

With no files, lints every src/**/*.cpp. Exit status 1 if any file
produced diagnostics. Cache dir defaults to $GTS_TIDY_CACHE_DIR or
.cache/clang-tidy; point CI's cache action at it.

Requires only the Python standard library.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def sha256_file(path: str, hasher) -> None:
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            hasher.update(chunk)


def global_header_digest() -> str:
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(os.path.join(REPO_ROOT, "src")):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith((".hpp", ".h")):
                path = os.path.join(dirpath, filename)
                hasher.update(os.path.relpath(path, REPO_ROOT).encode())
                sha256_file(path, hasher)
    return hasher.hexdigest()


def tidy_version(tidy: str) -> str:
    try:
        out = subprocess.run(
            [tidy, "--version"], capture_output=True, text=True, check=True
        )
    except (OSError, subprocess.CalledProcessError) as error:
        print(f"clang_tidy_cache: cannot run {tidy}: {error}", file=sys.stderr)
        sys.exit(2)
    return out.stdout.strip()


def file_key(path: str, salt: str) -> str:
    hasher = hashlib.sha256()
    hasher.update(salt.encode())
    hasher.update(os.path.relpath(path, REPO_ROOT).encode())
    sha256_file(path, hasher)
    return hasher.hexdigest()


def run_one(tidy: str, build_dir: str, path: str):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        capture_output=True,
        text=True,
    )
    return path, proc.returncode, proc.stdout, proc.stderr


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*")
    parser.add_argument("-p", dest="build_dir", required=True,
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(
            "GTS_TIDY_CACHE_DIR", os.path.join(REPO_ROOT, ".cache", "clang-tidy")
        ),
    )
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    if not os.path.isfile(os.path.join(args.build_dir, "compile_commands.json")):
        print(
            f"clang_tidy_cache: no compile_commands.json in {args.build_dir}",
            file=sys.stderr,
        )
        return 2

    files = args.files
    if not files:
        files = []
        for dirpath, dirnames, filenames in os.walk(
            os.path.join(REPO_ROOT, "src")
        ):
            dirnames.sort()
            files.extend(
                os.path.join(dirpath, f)
                for f in sorted(filenames)
                if f.endswith(".cpp")
            )

    config_path = os.path.join(REPO_ROOT, ".clang-tidy")
    salt_hasher = hashlib.sha256()
    salt_hasher.update(tidy_version(args.clang_tidy).encode())
    if os.path.exists(config_path):
        sha256_file(config_path, salt_hasher)
    salt_hasher.update(global_header_digest().encode())
    salt = salt_hasher.hexdigest()

    os.makedirs(args.cache_dir, exist_ok=True)
    pending = []
    hits = 0
    keys = {}
    for path in files:
        key = file_key(path, salt)
        keys[path] = key
        if os.path.exists(os.path.join(args.cache_dir, key)):
            hits += 1
        else:
            pending.append(path)

    print(
        f"clang_tidy_cache: {len(files)} file(s), {hits} cached, "
        f"{len(pending)} to lint"
    )

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(run_one, args.clang_tidy, args.build_dir, path)
            for path in pending
        ]
        for future in concurrent.futures.as_completed(futures):
            path, returncode, stdout, stderr = future.result()
            rel = os.path.relpath(path, REPO_ROOT)
            if returncode == 0 and not stdout.strip():
                marker = os.path.join(args.cache_dir, keys[path])
                with open(marker, "w", encoding="utf-8") as handle:
                    handle.write(rel + "\n")
            else:
                failures += 1
                print(f"-- {rel}")
                if stdout.strip():
                    print(stdout, end="")
                if returncode != 0 and stderr.strip():
                    print(stderr, file=sys.stderr, end="")

    if failures:
        print(
            f"clang_tidy_cache: {failures} file(s) with diagnostics",
            file=sys.stderr,
        )
        return 1
    print("clang_tidy_cache: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
