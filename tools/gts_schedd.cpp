// gts_schedd: the long-running scheduler-service daemon (DESIGN.md
// section 14). Listens on a Unix-domain socket and/or a TCP endpoint and
// serves the JSONL wire protocol: job submission (inline manifests or
// Section 5.1 manifest files), status/list/cancel, topology and metrics
// introspection, virtual-time advancement, crash-recovery snapshots, and
// graceful drain/shutdown.
//
//   gts_schedd --socket /tmp/gts.sock --machines 4 --policy topo-aware-p
//   gts_schedd --config etc/sys-config.ini --restore snap.json
//
// Configuration precedence: sys-config.ini [service] section (when
// --config is given), then the command-line flags on top.
#include <csignal>
#include <cstdio>

#include "config/system_config.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

gts::svc::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe
}

/// Splits "host:port"; exits with a usage error on malformed input.
bool parse_listen(const std::string& spec, std::string& host, int& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  host = spec.substr(0, colon);
  try {
    port = std::stoi(spec.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return port >= 0 && port <= 65535;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("config", "sys-config.ini ([service] section + cluster)");
  cli.add_option("socket", "unix-domain socket path to listen on");
  cli.add_option("listen", "TCP endpoint host:port (port 0 = ephemeral)");
  cli.add_option("policy", "fcfs | bf | topo-aware | topo-aware-p");
  cli.add_option("max-queue", "admission-queue bound");
  cli.add_option("retry-after-ms", "backpressure retry hint (ms)");
  cli.add_option("snapshot", "crash-recovery snapshot path");
  cli.add_option("snapshot-every-s",
                 "periodic snapshot interval (wall seconds, 0 = off)");
  cli.add_option("restore", "restore state from this snapshot, then serve");
  cli.add_option("machines", "cluster size (without --config)", "2");
  cli.add_option("shape", "machine shape: minsky | pcie | dgx1", "minsky");
  cli.add_option("batch-max",
                 "requests dispatched per reactor round (1 = unbatched)");
  cli.add_option("parse-threads",
                 "protocol-parse workers for batched rounds (0 = inline)");
  cli.add_flag("parallel-scoring",
               "parallel candidate scoring (decisions stay byte-identical)");
  cli.add_option("scoring-threads",
                 "scoring workers with --parallel-scoring (0 = all cores)");
  cli.add_flag("self-audit", "validate state after every simulated event");
  cli.add_option("shards",
                 "partition the cluster into this many cells with an "
                 "inter-shard router (1 = classic single driver)");
  cli.add_option("shard-threads",
                 "worker threads advancing cells concurrently (results stay "
                 "byte-identical; <= 1 = serial)");
  cli.add_option("prom-port",
                 "Prometheus scrape port (HTTP GET /metrics; 0 = ephemeral; "
                 "enables metrics + windows)");
  cli.add_option("prom-host", "Prometheus scrape bind address",
                 "127.0.0.1");
  cli.add_option("flight-dump",
                 "flight-recorder crash-dump path: enables the event ring "
                 "and dumps it there on SIGSEGV/SIGABRT, GTS_CHECK failure, "
                 "and clean exit");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  // Base system configuration: the INI file when given, defaults + the
  // --machines/--shape flags otherwise.
  config::SystemConfig system;
  system.machines = static_cast<int>(cli.get_int("machines"));
  system.machine_shape = cli.get("shape");
  if (cli.has("config")) {
    auto ini = config::Ini::parse_file(cli.get("config"));
    if (!ini) {
      std::fprintf(stderr, "%s\n", ini.error().message.c_str());
      return 1;
    }
    auto loaded = config::SystemConfig::from_ini(*ini);
    if (!loaded) {
      std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
      return 1;
    }
    system = *loaded;
  }
  if (auto status = obs::configure(system.obs); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  // Live-telemetry flags layer on top of whatever obs state is installed:
  // a scrape port implies the cumulative metrics + windowed aggregates it
  // serves; a crash-dump path implies the flight recorder.
  if (cli.has("prom-port") || cli.has("flight-dump")) {
    obs::ObsConfig live = obs::config();
    if (cli.has("prom-port")) {
      live.metrics = true;
      live.windows = true;
    }
    if (cli.has("flight-dump")) {
      live.flight = true;
      live.flight_out = cli.get("flight-dump");
    }
    if (auto status = obs::configure(live); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
  }

  // Flag overrides on the [service] section.
  config::ServiceConfig& service = system.service;
  if (cli.has("policy")) {
    auto policy = config::parse_policy(cli.get("policy"));
    if (!policy) {
      std::fprintf(stderr, "%s\n", policy.error().message.c_str());
      return 1;
    }
    service.policy = *policy;
  }
  if (cli.has("max-queue")) {
    service.max_queue = static_cast<int>(cli.get_int("max-queue"));
    if (service.max_queue < 1) {
      std::fprintf(stderr, "--max-queue must be >= 1\n");
      return 1;
    }
  }
  if (cli.has("retry-after-ms")) {
    service.retry_after_ms = cli.get_double("retry-after-ms");
  }
  if (cli.has("socket")) service.socket = cli.get("socket");
  if (cli.has("listen")) service.listen = cli.get("listen");
  if (cli.has("snapshot")) service.snapshot_path = cli.get("snapshot");
  if (cli.has("snapshot-every-s")) {
    service.snapshot_every_s = cli.get_double("snapshot-every-s");
  }
  if (cli.has("batch-max")) {
    service.batch_max = static_cast<int>(cli.get_int("batch-max"));
    if (service.batch_max < 1) {
      std::fprintf(stderr, "--batch-max must be >= 1\n");
      return 1;
    }
  }
  if (cli.has("parse-threads")) {
    service.parse_threads = static_cast<int>(cli.get_int("parse-threads"));
    if (service.parse_threads < 0) {
      std::fprintf(stderr, "--parse-threads must be >= 0\n");
      return 1;
    }
  }
  if (cli.has("parallel-scoring")) service.parallel_scoring = true;
  if (cli.has("scoring-threads")) {
    service.scoring_threads = static_cast<int>(cli.get_int("scoring-threads"));
    if (service.scoring_threads < 0) {
      std::fprintf(stderr, "--scoring-threads must be >= 0\n");
      return 1;
    }
  }
  if (cli.has("prom-port")) {
    service.prom_port = static_cast<int>(cli.get_int("prom-port"));
    if (service.prom_port < 0 || service.prom_port > 65535) {
      std::fprintf(stderr, "--prom-port must be in [0, 65535]\n");
      return 1;
    }
  }
  if (cli.has("prom-host")) service.prom_host = cli.get("prom-host");
  if (cli.has("shards")) {
    service.shard_count = static_cast<int>(cli.get_int("shards"));
    if (service.shard_count < 1) {
      std::fprintf(stderr, "--shards must be >= 1\n");
      return 1;
    }
  }
  if (cli.has("shard-threads")) {
    service.shard_threads = static_cast<int>(cli.get_int("shard-threads"));
    if (service.shard_threads < 0) {
      std::fprintf(stderr, "--shard-threads must be >= 0\n");
      return 1;
    }
  }

  const auto topology = config::build_topology(system);
  if (!topology) {
    std::fprintf(stderr, "%s\n", topology.error().message.c_str());
    return 1;
  }
  const bool pcie = util::to_lower(system.machine_shape) == "pcie";
  const perf::DlWorkloadModel model(
      pcie ? perf::CalibrationParams::paper_k80()
           : perf::CalibrationParams::paper_minsky());

  svc::ServiceOptions options;
  options.config = service;
  options.self_audit = system.self_audit || cli.has("self-audit");
  svc::ServiceCore core(*topology, model, options);
  if (cli.has("restore")) {
    if (auto status = core.load_snapshot(cli.get("restore")); !status) {
      std::fprintf(stderr, "restore failed: %s\n",
                   status.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "restored state from %s (sim now=%.3f)\n",
                 cli.get("restore").c_str(), core.driver().now());
  }

  svc::ServerOptions server_options;
  server_options.unix_socket = service.socket;
  if (!service.listen.empty()) {
    if (!parse_listen(service.listen, server_options.tcp_host,
                      server_options.tcp_port)) {
      std::fprintf(stderr, "--listen expects host:port, got '%s'\n",
                   service.listen.c_str());
      return 1;
    }
  }
  server_options.snapshot_path = service.snapshot_path;
  server_options.snapshot_every_s = service.snapshot_every_s;
  server_options.batch_max = service.batch_max;
  server_options.parse_threads = service.parse_threads;
  server_options.prom_port = service.prom_port;
  server_options.prom_host = service.prom_host;

  svc::Server server(core, server_options);
  if (auto status = server.start(); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Crash postmortems: pre-open the dump target and install the
  // async-signal-safe SIGSEGV/SIGABRT handlers.
  if (obs::flight_enabled() && !obs::config().flight_out.empty()) {
    if (auto status = obs::FlightRecorder::instance().install_crash_handler(
            obs::config().flight_out);
        !status) {
      std::fprintf(stderr, "flight recorder: %s\n",
                   status.error().message.c_str());
      return 1;
    }
  }

  // Readiness line (scripts wait for it before connecting).
  std::printf(
      "gts_schedd ready unix=%s tcp_port=%d prom_port=%d policy=%s "
      "machines=%d shards=%d\n",
      service.socket.empty() ? "-" : service.socket.c_str(), server.port(),
      server.prom_port(), to_string(options.config.policy).data(),
      system.machines, core.driver().shard_count());
  std::fflush(stdout);

  const auto run_status = server.run();
  g_server = nullptr;
  if (!run_status) {
    std::fprintf(stderr, "%s\n", run_status.error().message.c_str());
    return 1;
  }
  // Graceful exit: flush the observability sinks.
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "obs finalize: %s\n",
                 written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  return 0;
}
