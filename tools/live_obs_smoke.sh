#!/usr/bin/env bash
# Live-telemetry end-to-end smoke test (DESIGN.md section 18).
#
# Boots gts_schedd with the PR 8 live layer enabled (--prom-port plus a
# flight-recorder crash-dump path), drives 200 jobs through gts_ctl,
# then checks every operator-facing surface:
#
#   * the Prometheus scrape (raw HTTP/1.0 GET against --prom-port, no
#     curl needed) passes tools/validate_trace.py --kind prom, carries
#     the gts_window / gts_window_rate families, and answers 404 / 405
#     for bad targets and methods;
#   * `gts_ctl metrics --prom` serves the same exposition over the JSONL
#     protocol, and `gts_ctl dump` emits a valid flight JSONL stream;
#   * `gts_top --once --json` returns windowed decision-latency
#     quantiles, rolling throughput, live queue depth, and the per-job
#     lifecycle table;
#   * kill -SEGV leaves a parseable flight-recorder dump on disk
#     (--kind flight) written by the async-signal-safe crash handler.
#
#   tools/live_obs_smoke.sh [--build-dir build] [--out-dir live-obs-out]
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
OUT_DIR="live-obs-out"
JOBS=200

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    -h|--help) sed -n '2,21p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown option: $1" >&2; exit 1 ;;
  esac
done

SCHEDD="${BUILD_DIR}/tools/gts_schedd"
CTL="${BUILD_DIR}/tools/gts_ctl"
TOP="${BUILD_DIR}/tools/gts_top"
for bin in "$SCHEDD" "$CTL" "$TOP"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
done

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"
SOCKET="${OUT_DIR}/live_obs.sock"
FLIGHT="${OUT_DIR}/flight_crash.jsonl"
LOG="${OUT_DIR}/schedd.log"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

die() {
  echo "FAIL: $*" >&2
  exit 1
}

ctl() {
  "$CTL" --socket "$SOCKET" "$@"
}

# --- boot: live layer on (ephemeral scrape port + crash-dump path) ----
"$SCHEDD" --socket "$SOCKET" --machines 4 --policy topo-aware-p \
  --max-queue 256 --prom-port 0 --flight-dump "$FLIGHT" \
  >"$LOG" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q "gts_schedd ready" "$LOG" 2>/dev/null && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    cat "$LOG" >&2
    die "daemon exited before becoming ready"
  fi
  sleep 0.05
done
grep -q "gts_schedd ready" "$LOG" || die "daemon did not become ready"
PROM_PORT="$(sed -n 's/.*prom_port=\([0-9]*\).*/\1/p' "$LOG" | head -1)"
[[ -n "$PROM_PORT" && "$PROM_PORT" != "-1" ]] || die "no prom_port in readiness line"
echo "daemon up (pid ${DAEMON_PID}, prom_port ${PROM_PORT})"

# --- drive 200 jobs and some virtual time -----------------------------
for i in $(seq 1 "$JOBS"); do
  gpus=$(( 1 + i % 4 ))
  arrival="$(awk "BEGIN { printf \"%.1f\", $i * 1.5 }")"
  ctl submit --job "{\"id\":${i},\"nn\":\"AlexNet\",\"batch_size\":4,\"num_gpus\":${gpus},\"arrival_time\":${arrival},\"min_utility\":0.4,\"iterations\":200}" \
    >/dev/null || die "submit $i"
done
ctl advance --to 200 >/dev/null || die "advance --to 200"
echo "submitted ${JOBS} jobs, advanced to t=200"

# --- scrape over raw HTTP (curl equivalent via /dev/tcp) --------------
scrape() {
  local target="$1" out="$2"
  # Bash /dev/tcp: write an HTTP/1.0 request, read until the server
  # closes (Connection: close), strip the header block.
  exec 9<>"/dev/tcp/127.0.0.1/${PROM_PORT}" || return 1
  printf 'GET %s HTTP/1.0\r\n\r\n' "$target" >&9
  cat <&9 >"${out}.raw"
  exec 9>&- 9<&-
  head -1 "${out}.raw" | tr -d '\r'
  sed '1,/^\r\{0,1\}$/d' "${out}.raw" >"$out"
}

STATUS="$(scrape /metrics "${OUT_DIR}/scrape.prom")" || die "scrape failed"
[[ "$STATUS" == "HTTP/1.0 200 OK" ]] || die "scrape status: ${STATUS}"
python3 tools/validate_trace.py --kind prom "${OUT_DIR}/scrape.prom" \
  || die "scraped exposition failed prom validation"
grep -q '^gts_window{' "${OUT_DIR}/scrape.prom" \
  || die "scrape has no gts_window family (windows off?)"
grep -q '^gts_window_rate{' "${OUT_DIR}/scrape.prom" \
  || die "scrape has no gts_window_rate family"
STATUS="$(scrape /nope "${OUT_DIR}/notfound.txt")" || die "404 scrape failed"
[[ "$STATUS" == "HTTP/1.0 404 Not Found" ]] || die "bad-target status: ${STATUS}"
echo "HTTP scrape ok (200 on /metrics, 404 on /nope, grammar valid)"

# --- the same exposition over the JSONL protocol ----------------------
ctl metrics --prom >"${OUT_DIR}/ctl_metrics.prom" || die "metrics --prom"
python3 tools/validate_trace.py --kind prom "${OUT_DIR}/ctl_metrics.prom" \
  || die "metrics --prom failed validation"

# --- flight recorder via the dump verb --------------------------------
ctl dump >"${OUT_DIR}/flight_verb.jsonl" || die "dump verb"
python3 tools/validate_trace.py --kind flight "${OUT_DIR}/flight_verb.jsonl" \
  || die "dump verb output failed flight validation"

# --- gts_top: one machine-readable sample -----------------------------
"$TOP" --socket "$SOCKET" --once --json >"${OUT_DIR}/top.json" \
  || die "gts_top --once --json"
python3 - "${OUT_DIR}/top.json" <<'EOF' || die "gts_top sample incomplete"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["now"] > 0, "no sim time"
windows = doc["windows"]
for span in ("10s", "1m", "5m"):
    for stat in ("p50", "p95", "p99"):
        key = f"sched.decision_latency_us|{span}|{stat}"
        assert key in windows, f"missing {key}"
assert any(k.startswith("svc.requests|") for k in doc["rates"]), "no rates"
assert "gts_svc_queue_depth_live" in doc["gauges"], "no live queue depth"
jobs = doc["list"]["jobs"]
assert len(jobs) > 0, "empty job table"
# Lifecycle accounting rides on the recorder, which only knows admitted
# jobs: running/queued/finished rows must carry it, pre-arrival and
# rejected rows legitimately have no record.
tracked = [j for j in jobs if j["state"] in ("running", "queued", "finished")]
assert tracked, "no admitted jobs in the table"
assert all("postponements" in j for j in tracked), "no lifecycle fields"
print(f"gts_top sample ok: {len(jobs)} jobs, "
      f"{len(windows)} window stats, now={doc['now']}")
EOF

# --- crash: SIGSEGV must leave a parseable flight dump ----------------
kill -SEGV "$DAEMON_PID"
for _ in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.05
done
kill -0 "$DAEMON_PID" 2>/dev/null && die "daemon survived SIGSEGV"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""
[[ -s "$FLIGHT" ]] || die "SIGSEGV left no flight dump at ${FLIGHT}"
python3 tools/validate_trace.py --kind flight "$FLIGHT" \
  || die "crash flight dump failed validation"
echo "crash dump ok: $(wc -l <"$FLIGHT") events in ${FLIGHT}"

echo "PASS: live-telemetry smoke (scrape + dump + gts_top + crash dump)"
