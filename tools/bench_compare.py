#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json timing aggregates.

Compares the wall-clock `timing_aggregates` block of a current BENCH
document against a committed baseline and fails (exit 1) when any mean
latency regresses by more than the threshold:

    tools/bench_compare.py bench/baselines/BENCH_decision_micro.json \
        bench-out/BENCH_decision_micro.json --threshold 0.15

Contract (DESIGN.md section 15):
  * Only `timing_aggregates` is compared — the deterministic `aggregates`
    section is covered by the equivalence tests, not by this gate.
  * Scenarios and metric paths are intersected: a baseline recorded on a
    different sweep grid gates only the overlapping cells, and the gate
    says so. No overlap is a warning, not a failure (quick-mode CI grids
    legitimately differ from the committed full-size baselines).
  * Only metrics ending in `--suffix` (default ".mean") are gated; p95/max
    are too noisy for a hard gate at smoke seed counts.
  * A regression only fails when the relative delta exceeds
    `--threshold` AND the absolute delta exceeds `--min-value` (default
    25.0, microseconds for the stock documents): sub-noise-floor stage
    timers regress by 10x from scheduling jitter alone without anything
    being wrong, and a ratio over a tiny denominator means nothing. A
    real hot-path regression clears both bars in the large cells.
  * Run configuration must match: every `metadata` key present in BOTH
    documents must carry the same value (worker_threads, batch_max,
    connections, ...). Comparing a batched/parallel run against an
    unbatched baseline says nothing about regressions, so a mismatch is
    a hard error unless --allow-config-mismatch is given. Keys present
    in only one document are ignored (older baselines predate newer
    knobs), and the guard only fires when the documents share scenarios
    (disjoint quick-mode grids gate nothing anyway).

Improvements are reported but never fail the gate. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_doc(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        raise SystemExit(f"bench_compare: cannot read {path}: {err}")
    return doc


def timing_of(doc: dict, path: str) -> dict:
    timing = doc.get("timing_aggregates")
    if not isinstance(timing, dict):
        raise SystemExit(
            f"bench_compare: {path} has no timing_aggregates block "
            "(was it written with timing stripped?)"
        )
    return timing


def check_config(base_doc: dict, cur_doc: dict, allow_mismatch: bool) -> None:
    """Refuse to gate documents produced under different configurations.

    Every metadata key both documents carry must agree; a differing
    worker_threads / batch_max / connections means the timing deltas
    measure the config change, not a code regression.
    """
    base_meta = base_doc.get("metadata")
    cur_meta = cur_doc.get("metadata")
    if not isinstance(base_meta, dict) or not isinstance(cur_meta, dict):
        return
    mismatched = [
        key
        for key in sorted(set(base_meta) & set(cur_meta))
        if base_meta[key] != cur_meta[key]
    ]
    if not mismatched:
        return
    details = "; ".join(
        f"{key}: baseline={base_meta[key]!r} current={cur_meta[key]!r}"
        for key in mismatched
    )
    if allow_mismatch:
        print(
            "bench_compare: WARNING comparing across differing run "
            f"configurations ({details}) — --allow-config-mismatch given"
        )
        return
    raise SystemExit(
        "bench_compare: refusing to compare across differing run "
        f"configurations ({details}); regenerate the baseline with the "
        "same flags or pass --allow-config-mismatch"
    )


def metric_mean(entry) -> float | None:
    """A timing_aggregates leaf is {mean, p50, ...}; gate on its mean."""
    if isinstance(entry, dict) and isinstance(entry.get("mean"), (int, float)):
        return float(entry["mean"])
    if isinstance(entry, (int, float)):
        return float(entry)
    return None


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fail when BENCH timing means regress past a threshold"
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max allowed relative mean-latency regression (default 0.15)",
    )
    parser.add_argument(
        "--suffix",
        default=".mean",
        help="gate only metric paths with this suffix (default .mean)",
    )
    parser.add_argument(
        "--min-value",
        type=float,
        default=25.0,
        help="absolute delta a regression must also exceed (noise floor)",
    )
    parser.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="downgrade differing run-configuration metadata to a warning",
    )
    args = parser.parse_args()

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    base = timing_of(base_doc, args.baseline)
    cur = timing_of(cur_doc, args.current)

    scenarios = sorted(set(base) & set(cur))
    skipped_scenarios = sorted(set(base) ^ set(cur))
    if not scenarios:
        print(
            "bench_compare: WARNING no overlapping scenarios between "
            f"{args.baseline} and {args.current}; nothing gated"
        )
        return 0
    # Only enforce the config guard when something will actually be
    # gated; disjoint quick-mode grids never reach a comparison.
    check_config(base_doc, cur_doc, args.allow_config_mismatch)
    if skipped_scenarios:
        print(
            "bench_compare: note: scenarios only in one document, not "
            f"gated: {', '.join(skipped_scenarios)}"
        )

    rows = []
    regressions = []
    compared = 0
    for scenario in scenarios:
        base_metrics = base[scenario]
        cur_metrics = cur[scenario]
        if not isinstance(base_metrics, dict) or not isinstance(
            cur_metrics, dict
        ):
            continue
        for path in sorted(set(base_metrics) & set(cur_metrics)):
            if not path.endswith(args.suffix):
                continue
            base_mean = metric_mean(base_metrics[path])
            cur_mean = metric_mean(cur_metrics[path])
            if base_mean is None or cur_mean is None:
                continue
            compared += 1
            delta = (
                (cur_mean - base_mean) / base_mean if base_mean > 0 else 0.0
            )
            status = "ok"
            if delta > args.threshold:
                if cur_mean - base_mean > args.min_value:
                    status = "REGRESSION"
                    regressions.append(
                        (scenario, path, base_mean, cur_mean, delta)
                    )
                else:
                    status = "noise"
            elif delta < -args.threshold:
                status = "improved"
            rows.append((scenario, path, base_mean, cur_mean, delta, status))

    if compared == 0:
        print(
            "bench_compare: WARNING overlapping scenarios carry no "
            f"comparable '*{args.suffix}' metrics; nothing gated"
        )
        return 0

    header = ("scenario", "metric", "baseline", "current", "delta", "status")
    widths = [len(h) for h in header]
    rendered = []
    for scenario, path, base_mean, cur_mean, delta, status in rows:
        cells = (
            scenario,
            path,
            f"{base_mean:.1f}",
            f"{cur_mean:.1f}",
            f"{delta * 100.0:+.1f}%",
            status,
        )
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*header))
    for cells in rendered:
        print(fmt.format(*cells))

    print(
        f"bench_compare: {compared} metric(s) gated across "
        f"{len(scenarios)} scenario(s), threshold "
        f"{args.threshold * 100.0:.0f}%"
    )
    if regressions:
        for scenario, path, base_mean, cur_mean, delta in regressions:
            print(
                f"bench_compare: FAIL {scenario} {path}: "
                f"{base_mean:.1f} -> {cur_mean:.1f} "
                f"({delta * 100.0:+.1f}% > {args.threshold * 100.0:.0f}%)",
                file=sys.stderr,
            )
        return 1
    print("bench_compare: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
