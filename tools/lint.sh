#!/usr/bin/env bash
# Repo lint runner: convention checks (always), clang-tidy and a
# clang-format check (when the tools are installed).
#
# Usage: tools/lint.sh [--no-tidy] [--no-format]
#   LINT_BUILD_DIR   build dir holding compile_commands.json
#                    (default: build, then build-release, build-asan-ubsan)
#
# Exit status is non-zero if any enabled check fails. Missing optional
# tools are reported and skipped, not treated as failures, so the script
# is usable both in the slim dev container and in CI.
set -u

cd "$(dirname "$0")/.."

run_tidy=1
run_format=1
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --no-format) run_format=0 ;;
    *) echo "usage: tools/lint.sh [--no-tidy] [--no-format]" >&2; exit 2 ;;
  esac
done

failures=0
note() { printf '%s\n' "$*"; }
fail() { printf 'LINT FAIL: %s\n' "$*" >&2; failures=$((failures + 1)); }

# --- convention: every header uses #pragma once -----------------------------
headers_missing_pragma=$(grep -rL '^#pragma once$' src --include='*.hpp' || true)
if [ -n "$headers_missing_pragma" ]; then
  fail "headers missing '#pragma once':"$'\n'"$headers_missing_pragma"
else
  note "ok: #pragma once present in all src/ headers"
fi

# --- convention: no 'using namespace std' in headers ------------------------
std_using=$(grep -rn 'using namespace std' src --include='*.hpp' || true)
if [ -n "$std_using" ]; then
  fail "'using namespace std' in headers:"$'\n'"$std_using"
else
  note "ok: no 'using namespace std' in headers"
fi

# --- convention: no bare assert() outside src/check -------------------------
# Invariants must use the GTS_CHECK family (src/check/check.hpp), which
# survives NDEBUG and routes through the pluggable failure handler.
# The character class excludes static_assert and identifiers ending in
# assert; src/check itself is exempt.
bare_asserts=$(grep -rnE '(^|[^_[:alnum:]])assert\(' src \
  --include='*.cpp' --include='*.hpp' | grep -v '^src/check/' || true)
if [ -n "$bare_asserts" ]; then
  fail "bare assert() outside src/check (use GTS_CHECK/GTS_DCHECK):"$'\n'"$bare_asserts"
else
  note "ok: no bare assert() outside src/check"
fi

# --- clang-format (check-only, no reformat) ---------------------------------
if [ "$run_format" -eq 1 ]; then
  if command -v clang-format > /dev/null 2>&1; then
    format_sources=$(find src tests bench examples \
      -name '*.cpp' -o -name '*.hpp' | sort)
    # shellcheck disable=SC2086
    if ! clang-format --dry-run -Werror $format_sources > /dev/null 2>&1; then
      fail "clang-format check failed; run: clang-format -i <files>"
    else
      note "ok: clang-format clean"
    fi
  else
    note "skip: clang-format not installed"
  fi
fi

# --- clang-tidy -------------------------------------------------------------
if [ "$run_tidy" -eq 1 ]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    build_dir="${LINT_BUILD_DIR:-}"
    if [ -z "$build_dir" ]; then
      for candidate in build build-release build-asan-ubsan; do
        if [ -f "$candidate/compile_commands.json" ]; then
          build_dir="$candidate"
          break
        fi
      done
    fi
    if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
      fail "clang-tidy: no compile_commands.json (configure a build first)"
    else
      tidy_sources=$(find src -name '*.cpp' | sort)
      # shellcheck disable=SC2086
      if ! clang-tidy -p "$build_dir" --quiet $tidy_sources; then
        fail "clang-tidy reported diagnostics"
      else
        note "ok: clang-tidy clean"
      fi
    fi
  else
    note "skip: clang-tidy not installed"
  fi
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: $failures check(s) failed" >&2
  exit 1
fi
echo "lint: all checks passed"
