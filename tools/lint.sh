#!/usr/bin/env bash
# Repo lint runner: convention checks (always), clang-tidy and a
# clang-format check (when the tools are installed).
#
# Usage: tools/lint.sh [--no-tidy] [--no-format]
#   LINT_BUILD_DIR   build dir holding compile_commands.json
#                    (default: build, then build-release, build-asan-ubsan)
#
# Exit status is non-zero if any enabled check fails. Missing optional
# tools are reported and skipped, not treated as failures, so the script
# is usable both in the slim dev container and in CI.
set -u

cd "$(dirname "$0")/.."

run_tidy=1
run_format=1
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --no-format) run_format=0 ;;
    *) echo "usage: tools/lint.sh [--no-tidy] [--no-format]" >&2; exit 2 ;;
  esac
done

failures=0
note() { printf '%s\n' "$*"; }
fail() { printf 'LINT FAIL: %s\n' "$*" >&2; failures=$((failures + 1)); }

# --- conventions + determinism rules (tools/gts_lint.py) --------------------
# Covers #pragma once, 'using namespace std' in headers, bare assert()
# (formerly inline grep checks here) plus the decision-path determinism
# rules: unordered iteration, pointer keys, wall-clock reads, raw
# randomness. Findings not in tools/gts_lint_baseline.json fail the run.
if command -v python3 > /dev/null 2>&1; then
  if python3 tools/gts_lint.py; then
    note "ok: gts_lint clean"
  else
    fail "gts_lint reported findings (see above)"
  fi
else
  fail "python3 not found; cannot run tools/gts_lint.py"
fi

# --- clang-format (check-only, no reformat) ---------------------------------
if [ "$run_format" -eq 1 ]; then
  if command -v clang-format > /dev/null 2>&1; then
    format_sources=$(find src tests bench examples \
      -name '*.cpp' -o -name '*.hpp' | sort)
    # shellcheck disable=SC2086
    if ! clang-format --dry-run -Werror $format_sources > /dev/null 2>&1; then
      fail "clang-format check failed; run: clang-format -i <files>"
    else
      note "ok: clang-format clean"
    fi
  else
    note "skip: clang-format not installed"
  fi
fi

# --- clang-tidy -------------------------------------------------------------
if [ "$run_tidy" -eq 1 ]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    build_dir="${LINT_BUILD_DIR:-}"
    if [ -z "$build_dir" ]; then
      for candidate in build build-release build-asan-ubsan; do
        if [ -f "$candidate/compile_commands.json" ]; then
          build_dir="$candidate"
          break
        fi
      done
    fi
    if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
      fail "clang-tidy: no compile_commands.json (configure a build first)"
    else
      # The cache wrapper skips files whose content (and the headers /
      # config they depend on) already linted clean; CI persists the
      # cache dir between runs.
      if ! python3 tools/clang_tidy_cache.py -p "$build_dir"; then
        fail "clang-tidy reported diagnostics"
      else
        note "ok: clang-tidy clean"
      fi
    fi
  else
    note "skip: clang-tidy not installed"
  fi
fi

if [ "$failures" -gt 0 ]; then
  echo "lint: $failures check(s) failed" >&2
  exit 1
fi
echo "lint: all checks passed"
