// gts_top: live terminal dashboard for a running gts_schedd daemon
// (DESIGN.md section 18.5).
//
//   gts_top --socket /tmp/gts.sock
//   gts_top --tcp 127.0.0.1:7070 --interval 1
//   gts_top --socket /tmp/gts.sock --once --json   (one machine-readable
//                                                   sample, then exit)
//
// Each refresh polls the daemon's `metrics_prom` exposition (throughput
// and latency quantiles come from the gts_window / gts_window_rate
// families, live gauges from the *_live family) and `list {detail:true}`
// (the per-job lifecycle table). The daemon needs --prom-port or
// --obs-windows for the windowed rows; the gauge header works on any
// daemon.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "svc/client.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;

int fail(const char* what, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", what, message.c_str());
  return 1;
}

/// Minimal parse of the Prometheus text format: `name value` samples plus
/// `name{labels} value` samples keyed by selected label values. Ignores
/// comment lines and samples it has no use for.
struct PromSample {
  std::map<std::string, double> plain;  // unlabelled name -> value
  /// "metric|span|stat" -> value (the gts_window family).
  std::map<std::string, double> window;
  /// "metric|span" -> rate (the gts_window_rate family).
  std::map<std::string, double> rate;
};

std::string label_value(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const std::size_t start = labels.find(needle);
  if (start == std::string::npos) return "";
  const std::size_t begin = start + needle.size();
  const std::size_t end = labels.find('"', begin);
  if (end == std::string::npos) return "";
  return labels.substr(begin, end - begin);
}

PromSample parse_prom(const std::string& text) {
  PromSample sample;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string series = line.substr(0, space);
    double value = 0.0;
    try {
      value = std::stod(line.substr(space + 1));
    } catch (...) {
      continue;
    }
    const std::size_t brace = series.find('{');
    if (brace == std::string::npos) {
      sample.plain[series] = value;
      continue;
    }
    const std::string name = series.substr(0, brace);
    const std::string labels = series.substr(brace);
    const std::string metric = label_value(labels, "metric");
    const std::string span = label_value(labels, "span");
    if (name == "gts_window") {
      sample.window[metric + "|" + span + "|" + label_value(labels, "stat")] =
          value;
    } else if (name == "gts_window_rate") {
      sample.rate[metric + "|" + span] = value;
    }
  }
  return sample;
}

double plain_or(const PromSample& sample, const std::string& name,
                double fallback) {
  const auto it = sample.plain.find(name);
  return it == sample.plain.end() ? fallback : it->second;
}

std::string format_row(const json::Value& job, int id_width) {
  const std::string state = job.at("state").as_string();
  std::string extra;
  if (state == "running") {
    extra = util::fmt("prog={}% util={}",
                      util::format_double(
                          job.at("progress").as_number(0.0) * 100.0, 1),
                      util::format_double(
                          job.at("placement_utility").as_number(0.0), 3));
  } else if (state == "queued") {
    extra = util::fmt("waited={}s",
                      util::format_double(job.at("waited").as_number(0.0), 1));
  } else if (state == "finished") {
    extra = util::fmt("jct_slowdown={}",
                      util::format_double(
                          job.at("jct_slowdown").as_number(-1.0), 2));
  }
  char head[128];
  // Dynamic id column: datacenter runs reach 5-digit job ids, so the old
  // fixed two-space layout stopped lining up past id 999.
  std::snprintf(head, sizeof(head), "  %*lld  %-15s gpus=%-3lld postponed=%-2lld ",
                id_width, static_cast<long long>(job.at("id").as_int()),
                state.c_str(),
                static_cast<long long>(job.at("num_gpus").as_int(0)),
                static_cast<long long>(job.at("postponements").as_int(0)));
  return std::string(head) + extra;
}

int digits(long long value) {
  int width = 1;
  while (value >= 10) {
    value /= 10;
    ++width;
  }
  return width;
}

void render_shards(const json::Value& shards) {
  // Per-cell aggregate table: at datacenter scale a per-machine listing
  // is unreadable, so the dashboard shows one row per shard instead.
  const long long count = shards.at("shards").as_int(1);
  if (count <= 1 || !shards.at("cells").is_array()) return;
  const json::Value& router = shards.at("router");
  std::printf("shards (%lld):  routed=%lld filtered=%lld exhausted=%lld "
              "route_mean=%.1fus\n",
              count, router.at("routed").as_int(0),
              router.at("filtered").as_int(0),
              router.at("exhausted").as_int(0),
              router.at("route_latency_us").at("mean").as_number(0.0));
  std::printf("  %5s %9s %8s %8s %8s %7s %6s %9s\n", "shard", "machines",
              "gpus", "free", "running", "queued", "frag", "routed");
  for (const json::Value& cell : shards.at("cells").as_array()) {
    std::printf("  %5lld %9lld %8lld %8lld %8lld %7lld %6.2f %9lld\n",
                static_cast<long long>(cell.at("shard").as_int()),
                static_cast<long long>(cell.at("machines").as_int()),
                static_cast<long long>(cell.at("gpus").as_int()),
                static_cast<long long>(cell.at("free_gpus").as_int()),
                static_cast<long long>(cell.at("running").as_int()),
                static_cast<long long>(cell.at("queued").as_int()),
                cell.at("fragmentation").as_number(0.0),
                static_cast<long long>(cell.at("routed").as_int()));
  }
}

void render(const PromSample& prom, const json::Value& list,
            const json::Value& shards) {
  std::printf("gts_top  sim_t=%.1fs  queue=%d  running=%d  free_gpus=%d  "
              "frag=%.2f%s\n",
              plain_or(prom, "gts_svc_sim_now_seconds", 0.0),
              static_cast<int>(plain_or(prom, "gts_svc_queue_depth_live", 0)),
              static_cast<int>(
                  plain_or(prom, "gts_svc_running_jobs_live", 0)),
              static_cast<int>(plain_or(prom, "gts_cluster_free_gpus_live", 0)),
              plain_or(prom, "gts_cluster_fragmentation_live", 0.0),
              plain_or(prom, "gts_svc_draining", 0.0) > 0.5 ? "  DRAINING"
                                                            : "");
  std::printf("decisions=%lld\n",
              static_cast<long long>(
                  plain_or(prom, "gts_sched_decisions_live", 0.0)));
  if (!prom.rate.empty()) {
    std::printf("%-28s %10s %10s %10s\n", "window", "10s", "1m", "5m");
    const auto rate_row = [&prom](const char* label,
                                  const std::string& metric) {
      std::printf("%-28s %10.2f %10.2f %10.2f\n", label,
                  prom.rate.count(metric + "|10s") != 0u
                      ? prom.rate.at(metric + "|10s") : 0.0,
                  prom.rate.count(metric + "|1m") != 0u
                      ? prom.rate.at(metric + "|1m") : 0.0,
                  prom.rate.count(metric + "|5m") != 0u
                      ? prom.rate.at(metric + "|5m") : 0.0);
    };
    const auto stat_row = [&prom](const char* label,
                                  const std::string& metric,
                                  const char* stat) {
      const auto cell = [&](const char* span) {
        const std::string key = metric + "|" + span + "|" + stat;
        return prom.window.count(key) != 0u ? prom.window.at(key) : 0.0;
      };
      std::printf("%-28s %10.1f %10.1f %10.1f\n", label, cell("10s"),
                  cell("1m"), cell("5m"));
    };
    rate_row("svc req/s", "svc.requests");
    rate_row("placements/s", "sched.placements");
    stat_row("decision p99 (us)", "sched.decision_latency_us", "p99");
    stat_row("svc latency p99 (us)", "svc.request_latency_us", "p99");
    stat_row("queue depth p95", "sched.queue_depth", "p95");
  } else {
    std::printf("(no windowed metrics: start the daemon with --prom-port "
                "or --obs-windows)\n");
  }
  render_shards(shards);
  if (list.at("jobs").is_array()) {
    const auto& jobs = list.at("jobs").as_array();
    std::printf("jobs (%zu):\n", jobs.size());
    int id_width = 4;
    for (const json::Value& job : jobs) {
      id_width = std::max(id_width, digits(job.at("id").as_int(0)));
    }
    std::size_t shown = 0;
    for (const json::Value& job : jobs) {
      if (shown++ >= 32) {
        std::printf("  ... %zu more\n", jobs.size() - 32);
        break;
      }
      std::printf("%s\n", format_row(job, id_width).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("socket", "daemon unix-domain socket path");
  cli.add_option("tcp", "daemon TCP endpoint host:port");
  cli.add_option("interval", "refresh interval in seconds", "2");
  cli.add_flag("once", "render one sample and exit");
  cli.add_flag("json", "emit the sample as JSON instead of the dashboard");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  util::Expected<svc::Client> client = util::Error{"no endpoint"};
  if (cli.has("socket")) {
    client = svc::Client::connect_unix(cli.get("socket"));
  } else if (cli.has("tcp")) {
    const std::string spec = cli.get("tcp");
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) return fail("--tcp", "expects host:port");
    int port = 0;
    try {
      port = std::stoi(spec.substr(colon + 1));
    } catch (...) {
      return fail("--tcp", "expects host:port");
    }
    client = svc::Client::connect_tcp(spec.substr(0, colon), port);
  } else {
    return fail("endpoint", "give --socket PATH or --tcp HOST:PORT");
  }
  if (!client) return fail("connect", client.error().message);

  const bool once = cli.has("once");
  const bool as_json = cli.has("json");
  const double interval_s = cli.get_double("interval");
  if (interval_s <= 0.0) return fail("--interval", "must be > 0");

  while (true) {
    auto prom_response = client->call("metrics_prom");
    if (!prom_response) {
      return fail("transport", prom_response.error().message);
    }
    if (!prom_response->ok) {
      return fail("metrics_prom", prom_response->message);
    }
    json::Value list_params;
    list_params.set("detail", true);
    auto list_response = client->call("list", std::move(list_params));
    if (!list_response) {
      return fail("transport", list_response.error().message);
    }
    if (!list_response->ok) return fail("list", list_response->message);
    // Per-shard aggregates (empty value against a daemon predating the
    // verb — the dashboard simply omits the table).
    json::Value shards;
    if (auto shards_response = client->call("shards");
        shards_response && shards_response->ok) {
      shards = shards_response->result;
    }

    const std::string prom_text =
        prom_response->result.at("text").as_string();
    const PromSample prom = parse_prom(prom_text);

    if (as_json) {
      // One machine-readable sample: the parsed prom families plus the
      // list result (which carries the per-job table under "jobs").
      json::Value sample;
      sample.set("now", plain_or(prom, "gts_svc_sim_now_seconds", 0.0));
      json::Value gauges;
      for (const auto& [name, value] : prom.plain) gauges.set(name, value);
      sample.set("gauges", std::move(gauges));
      json::Value windows;
      for (const auto& [key, value] : prom.window) windows.set(key, value);
      sample.set("windows", std::move(windows));
      json::Value rates;
      for (const auto& [key, value] : prom.rate) rates.set(key, value);
      sample.set("rates", std::move(rates));
      sample.set("list", list_response->result);
      if (shards.is_object()) sample.set("shards", shards);
      std::printf("%s\n", json::write(sample, {.indent = 2}).c_str());
    } else {
      if (!once && isatty(STDOUT_FILENO) != 0) {
        std::printf("\033[2J\033[H");
      }
      render(prom, list_response->result, shards);
    }
    std::fflush(stdout);
    if (once) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
  return 0;
}
